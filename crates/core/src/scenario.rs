//! Scenario runner: drives a phase-structured workload against any
//! [`TickDriver`] and reports collective-level metrics.
//!
//! The workload side ([`flowtune_workload::Scenario`]) is pure data — a
//! stream of [`Phase`]s with barrier or timed admission. This module owns
//! the control side: it mints tokens, hashes flows onto ECMP spines,
//! feeds `FlowletStart`/`FlowletEnd` notifications into a [`TickLoop`],
//! and drains each flow with the same fluid model the bench driver uses
//! (`delivered = rate · Δt`, the endpoint pacing its normalized rate).
//! A barrier phase is admitted only when no earlier flow remains active;
//! a cut phase force-ends survivors first, so the allocator sees the same
//! abrupt arrival/departure edges a real collective or burst produces.
//!
//! Per phase the runner reports completion time, p99 flow-completion
//! time, and the Jain fairness index over per-flow mean throughput;
//! per run it reports peak over-allocation (raw engine rates vs link
//! capacity) and peak over-subscription (normalized, endpoint-visible
//! rates vs link capacity — the feasibility F-NORM guarantees).

use flowtune_proto::{Message, Token};
use flowtune_topo::FlowId;
use flowtune_workload::{Admission, Phase, Scenario};

use crate::driver::{TickDriver, TickLoop};
use crate::service::ServiceStats;

/// Knobs for a scenario run.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioOptions {
    /// Hard tick budget; the run reports `truncated = true` if the
    /// scenario has not drained by then.
    pub max_ticks: u64,
    /// Ticks after an admission before feasibility peaks are sampled,
    /// giving the allocator its reaction window (a tick to see the
    /// arrivals, a tick to converge the prices).
    pub grace_ticks: u64,
    /// Proportional-fairness weight stamped on every flow (256 = 1.0).
    pub weight_q8: u16,
}

impl Default for ScenarioOptions {
    fn default() -> Self {
        ScenarioOptions {
            max_ticks: 200_000,
            grace_ticks: 3,
            weight_q8: 256,
        }
    }
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` over a set of throughputs:
/// 1.0 when all shares are equal, `1/n` when one flow starves the rest.
/// Empty and all-zero inputs report 1.0 (nothing is being divided).
pub fn jain_index(xs: &[f64]) -> f64 {
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sum_sq)
}

/// Per-phase outcome.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// The phase's label, from the generator.
    pub label: String,
    /// Tick at which the phase's flows were admitted.
    pub admitted_tick: u64,
    /// Admission → last flow done, ps. `None` if the run was truncated
    /// (or the phase's survivors were cut) before natural completion.
    pub completion_ps: Option<u64>,
    /// Flows the phase admitted.
    pub flows: usize,
    /// Flows force-ended by a later cut phase.
    pub cut_flows: usize,
    /// p99 flow-completion time over naturally completed flows, ps.
    pub p99_fct_ps: Option<u64>,
    /// Jain index over per-flow mean throughput (completed and cut).
    pub jain: Option<f64>,
}

/// Whole-run outcome.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario family name.
    pub scenario: String,
    /// Driver engine name.
    pub engine: String,
    /// Per-phase outcomes, in admission order.
    pub phases: Vec<PhaseReport>,
    /// Ticks the run consumed.
    pub ticks: u64,
    /// Wall of the run on the tick clock, ps.
    pub duration_ps: u64,
    /// Peak Σ max(0, load − capacity) over links, Gbit/s, sampled from
    /// the engine's **raw** allocation outside grace windows. Zero for
    /// engines that do not price links (Fastpass).
    pub peak_overallocation_gbps: f64,
    /// Peak per-link (load/capacity − 1) of the **normalized**,
    /// endpoint-visible rates, sampled outside grace windows. ≤ 0 means
    /// no link was ever over-subscribed.
    pub peak_oversubscription: f64,
    /// The tick budget ran out before the scenario drained.
    pub truncated: bool,
    /// Driver counters at the end of the run.
    pub stats: ServiceStats,
}

impl ScenarioReport {
    /// p99 FCT across every naturally completed flow of every phase, ps.
    pub fn p99_fct_ps(&self) -> Option<u64> {
        self.phases.iter().filter_map(|p| p.p99_fct_ps).max()
    }

    /// The worst per-phase Jain index.
    pub fn min_jain(&self) -> Option<f64> {
        self.phases
            .iter()
            .filter_map(|p| p.jain)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Completion time of the slowest phase, ps.
    pub fn max_phase_completion_ps(&self) -> Option<u64> {
        self.phases.iter().filter_map(|p| p.completion_ps).max()
    }
}

/// An admitted, not-yet-finished flow.
#[derive(Debug)]
struct ActiveFlow {
    token: u32,
    phase: usize,
    admitted_tick: u64,
    delivered_bytes: f64,
    remaining_bytes: f64,
    /// `links[links_start..links_end]` in the runner's arena.
    links_start: u32,
    links_end: u32,
}

#[derive(Debug)]
struct PhaseState {
    label: String,
    admitted_tick: u64,
    flows: usize,
    outstanding: usize,
    cut: usize,
    completion_ps: Option<u64>,
    fct_ps: Vec<f64>,
    throughput_gbps: Vec<f64>,
}

/// Runner state: active flows, reusable per-tick buffers, and peaks.
#[derive(Debug)]
struct RunnerState {
    interval_ps: u64,
    weight_q8: u16,
    next_token: u32,
    active: Vec<ActiveFlow>,
    /// Flat arena of link indices; each flow owns a slice of it.
    link_arena: Vec<u32>,
    /// Per-link capacity, Gbit/s.
    cap_gbps: Vec<f64>,
    /// Per-link normalized load accumulator, reused every sampled tick.
    loads: Vec<f64>,
    /// Indices into `active` that finished this tick, reused.
    ended: Vec<usize>,
    phases: Vec<PhaseState>,
    last_admit_tick: u64,
    grace_ticks: u64,
    peak_overalloc: f64,
    peak_oversub: f64,
}

impl RunnerState {
    fn new<D: TickDriver>(ticker: &TickLoop<D>, opts: &ScenarioOptions) -> Self {
        let topo = ticker.driver().fabric().topology();
        let cap_gbps: Vec<f64> = topo
            .links()
            .iter()
            .map(|l| l.capacity_bps as f64 / 1e9)
            .collect();
        RunnerState {
            interval_ps: ticker.interval_ps(),
            weight_q8: opts.weight_q8,
            next_token: 1,
            active: Vec::new(),
            link_arena: Vec::new(),
            loads: vec![0.0; cap_gbps.len()],
            cap_gbps,
            ended: Vec::with_capacity(64),
            phases: Vec::new(),
            last_admit_tick: 0,
            grace_ticks: opts.grace_ticks,
            peak_overalloc: 0.0,
            peak_oversub: f64::NEG_INFINITY,
        }
    }

    /// Force-ends every active flow (a cut phase's `ends_previous`),
    /// crediting each with the bytes it actually moved.
    fn cut_active<D: TickDriver>(
        &mut self,
        ticker: &mut TickLoop<D>,
        tick: u64,
        trace: &mut dyn FnMut(u64, &Message),
    ) {
        for flow in self.active.drain(..) {
            let msg = Message::FlowletEnd {
                token: Token::new(flow.token),
            };
            trace(tick, &msg);
            ticker
                .driver_mut()
                .on_message(msg)
                .expect("cut flow is active");
            let phase = &mut self.phases[flow.phase];
            phase.outstanding -= 1;
            phase.cut += 1;
            let lifetime_ps = (tick - flow.admitted_tick) * self.interval_ps;
            if lifetime_ps > 0 {
                phase
                    .throughput_gbps
                    .push(flow.delivered_bytes * 8.0 / (lifetime_ps as f64 * 1e-3));
            }
        }
    }

    /// Admits one phase's flows at `tick`.
    fn admit<D: TickDriver>(
        &mut self,
        ticker: &mut TickLoop<D>,
        tick: u64,
        phase: Phase,
        trace: &mut dyn FnMut(u64, &Message),
    ) {
        if phase.ends_previous {
            self.cut_active(ticker, tick, trace);
        }
        let phase_idx = self.phases.len();
        self.phases.push(PhaseState {
            label: phase.label,
            admitted_tick: tick,
            flows: phase.flows.len(),
            outstanding: phase.flows.len(),
            cut: 0,
            completion_ps: if phase.flows.is_empty() {
                Some(0)
            } else {
                None
            },
            fct_ps: Vec::new(),
            throughput_gbps: Vec::new(),
        });
        self.last_admit_tick = tick;
        for f in &phase.flows {
            let token = self.next_token;
            self.next_token += 1;
            let links_start = self.link_arena.len() as u32;
            let spine = {
                let fabric = ticker.driver().fabric();
                let spine = fabric.ecmp_spine(f.src as usize, f.dst as usize, FlowId(token as u64));
                let path = fabric.path_via_spine(f.src as usize, f.dst as usize, spine);
                self.link_arena.extend(path.links().iter().map(|l| l.0));
                spine
            };
            let msg = Message::FlowletStart {
                token: Token::new(token),
                src: f.src as u16,
                dst: f.dst as u16,
                size_hint: f.bytes.min(u32::MAX as u64) as u32,
                weight_q8: self.weight_q8,
                spine: spine as u8,
            };
            trace(tick, &msg);
            ticker
                .driver_mut()
                .on_message(msg)
                .expect("scenario flows are valid by construction");
            self.active.push(ActiveFlow {
                token,
                phase: phase_idx,
                admitted_tick: tick,
                delivered_bytes: 0.0,
                remaining_bytes: f.bytes as f64,
                links_start,
                links_end: self.link_arena.len() as u32,
            });
        }
    }

    /// One post-tick pass: drains every active flow by `rate · Δt`,
    /// collects the ones that finished, and (outside grace windows)
    /// samples the feasibility peaks. This is the scenario hot path —
    /// it must not allocate in steady state.
    fn drain_and_sample<D: TickDriver>(&mut self, ticker: &TickLoop<D>, tick: u64) {
        let sample = !self.active.is_empty() && tick >= self.last_admit_tick + self.grace_ticks;
        if sample {
            self.loads.fill(0.0);
        }
        // Gbit/s → bytes per tick: 1e9 bits/s · (interval/1e12) s / 8.
        let bytes_per_gbit_tick = self.interval_ps as f64 / 8_000.0;
        self.ended.clear();
        let driver = ticker.driver();
        for (i, flow) in self.active.iter_mut().enumerate() {
            let rate = driver.flow_rate_gbps(Token::new(flow.token)).unwrap_or(0.0);
            let delivered = (rate * bytes_per_gbit_tick).min(flow.remaining_bytes);
            flow.delivered_bytes += delivered;
            flow.remaining_bytes -= delivered;
            if flow.remaining_bytes <= 0.0 {
                self.ended.push(i);
            }
            if sample {
                for &l in &self.link_arena[flow.links_start as usize..flow.links_end as usize] {
                    self.loads[l as usize] += rate;
                }
            }
        }
        if sample {
            let mut oversub = f64::NEG_INFINITY;
            for (l, &load) in self.loads.iter().enumerate() {
                let cap = self.cap_gbps[l];
                if cap > 0.0 && load > 0.0 {
                    oversub = oversub.max(load / cap - 1.0);
                }
            }
            if oversub > self.peak_oversub {
                self.peak_oversub = oversub;
            }
            let mut overalloc = 0.0;
            let raw = driver.link_loads();
            for (l, &load) in raw.iter().enumerate() {
                overalloc += (load - self.cap_gbps[l]).max(0.0);
            }
            if overalloc > self.peak_overalloc {
                self.peak_overalloc = overalloc;
            }
        }
    }

    /// Retires the flows [`RunnerState::drain_and_sample`] found done
    /// after tick `tick`, feeding their `FlowletEnd`s (they land before
    /// tick `tick + 1` runs, hence the trace stamp).
    fn finish_ended<D: TickDriver>(
        &mut self,
        ticker: &mut TickLoop<D>,
        tick: u64,
        trace: &mut dyn FnMut(u64, &Message),
    ) {
        for &i in self.ended.iter().rev() {
            let flow = self.active.swap_remove(i);
            let msg = Message::FlowletEnd {
                token: Token::new(flow.token),
            };
            trace(tick + 1, &msg);
            ticker
                .driver_mut()
                .on_message(msg)
                .expect("finished flow is active");
            let fct_ps = (tick + 1 - flow.admitted_tick) * self.interval_ps;
            let phase = &mut self.phases[flow.phase];
            phase.fct_ps.push(fct_ps as f64);
            // bytes · 8 bits / (ps · 1e-12 s) / 1e9 = bytes · 8e3 / ps Gbit/s.
            phase
                .throughput_gbps
                .push(flow.delivered_bytes * 8.0 / (fct_ps as f64 * 1e-3));
            phase.outstanding -= 1;
            if phase.outstanding == 0 && phase.completion_ps.is_none() {
                phase.completion_ps = Some((tick + 1 - phase.admitted_tick) * self.interval_ps);
            }
        }
        self.ended.clear();
    }

    fn into_report(
        self,
        scenario: &str,
        engine: &str,
        ticks: u64,
        truncated: bool,
        stats: ServiceStats,
    ) -> ScenarioReport {
        let interval_ps = self.interval_ps;
        let peak_oversub = if self.peak_oversub == f64::NEG_INFINITY {
            0.0
        } else {
            self.peak_oversub
        };
        let phases = self
            .phases
            .into_iter()
            .map(|mut p| PhaseReport {
                label: p.label,
                admitted_tick: p.admitted_tick,
                completion_ps: p.completion_ps,
                flows: p.flows,
                cut_flows: p.cut,
                p99_fct_ps: percentile(&mut p.fct_ps, 0.99).map(|f| f as u64),
                jain: if p.throughput_gbps.is_empty() {
                    None
                } else {
                    Some(jain_index(&p.throughput_gbps))
                },
            })
            .collect();
        ScenarioReport {
            scenario: scenario.to_string(),
            engine: engine.to_string(),
            phases,
            ticks,
            duration_ps: ticks * interval_ps,
            peak_overallocation_gbps: self.peak_overalloc,
            peak_oversubscription: peak_oversub,
            truncated,
            stats,
        }
    }
}

/// Nearest-rank percentile; sorts `xs` in place.
fn percentile(xs: &mut [f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    xs.sort_by(f64::total_cmp);
    let rank = ((p * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
    Some(xs[rank - 1])
}

/// Runs `scenario` to completion (or the tick budget) against the driver
/// wrapped in `ticker`, reporting per-phase and whole-run metrics.
///
/// The ticker is polled at exactly its own cadence, one tick per
/// simulated interval; timestamps in the report are relative to the
/// runner's first tick.
pub fn run_scenario<D: TickDriver>(
    ticker: &mut TickLoop<D>,
    scenario: &mut dyn Scenario,
    opts: &ScenarioOptions,
) -> ScenarioReport {
    run_scenario_traced(ticker, scenario, opts, &mut |_, _| {})
}

/// [`run_scenario`], additionally handing every notification the runner
/// feeds into the driver to `trace` as `(tick, message)` — the message
/// lands before that tick runs. This is the hook the differential
/// conformance harness records replay streams with.
pub fn run_scenario_traced<D: TickDriver>(
    ticker: &mut TickLoop<D>,
    scenario: &mut dyn Scenario,
    opts: &ScenarioOptions,
    trace: &mut dyn FnMut(u64, &Message),
) -> ScenarioReport {
    let mut state = RunnerState::new(ticker, opts);
    let mut pending = scenario.next_phase();
    let mut truncated = false;
    let mut ticks = 0u64;
    for tick in 0..u64::MAX {
        // Admit every phase due at this tick. A barrier phase is due when
        // nothing is active; an empty phase completes instantly, so a
        // barrier chain can admit several phases in one tick.
        while let Some(phase) = pending.take() {
            let due = match phase.admission {
                Admission::AfterPrevious => state.active.is_empty(),
                Admission::AtTick(k) => tick >= k,
            };
            if !due {
                pending = Some(phase);
                break;
            }
            state.admit(ticker, tick, phase, trace);
            pending = scenario.next_phase();
        }
        if pending.is_none() && state.active.is_empty() {
            ticks = tick;
            break;
        }
        if tick >= opts.max_ticks {
            truncated = true;
            ticks = tick;
            break;
        }
        let owed = ticker.next_tick_ps();
        let _updates = ticker
            .poll(owed)
            .expect("a tick is always owed at its own deadline");
        state.drain_and_sample(ticker, tick);
        state.finish_ended(ticker, tick, trace);
    }
    let name = scenario.name();
    let engine = ticker.driver().engine_name();
    let stats = ticker.driver().stats();
    state.into_report(name, engine, ticks, truncated, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::AllocatorService;
    use crate::FlowtuneConfig;
    use flowtune_topo::{ClosConfig, TwoTierClos};
    use flowtune_workload::ScenarioKind;

    fn ticker(fabric: &TwoTierClos) -> TickLoop<AllocatorService> {
        let cfg = FlowtuneConfig::default();
        TickLoop::new(AllocatorService::new(fabric, cfg), cfg.tick_interval_ps)
    }

    #[test]
    fn jain_index_is_one_for_equal_shares_and_one_over_n_for_a_hog() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[3.0, 3.0, 3.0, 3.0]), 1.0);
        let hog = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((hog - 0.25).abs() < 1e-12, "{hog}");
        let mild = jain_index(&[2.0, 1.0]);
        assert!(mild > 0.25 && mild < 1.0);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let mut xs = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&mut xs, 0.5), Some(2.0));
        assert_eq!(percentile(&mut xs, 0.99), Some(4.0));
        let mut empty: [f64; 0] = [];
        assert_eq!(percentile(&mut empty, 0.5), None);
    }

    #[test]
    fn a_ring_allreduce_runs_its_barrier_chain_to_completion() {
        let fabric = TwoTierClos::build(ClosConfig::multicore(2, 2, 4));
        let mut tl = ticker(&fabric);
        let mut scenario = ScenarioKind::AllreduceRing.build(16, 50_000_000);
        let report = run_scenario(&mut tl, scenario.as_mut(), &ScenarioOptions::default());
        assert!(!report.truncated, "budget blown: {} ticks", report.ticks);
        assert_eq!(report.phases.len(), 30, "2(n−1) phases for n = 16");
        for p in &report.phases {
            assert_eq!(p.flows, 16);
            assert_eq!(p.cut_flows, 0);
            assert!(p.completion_ps.is_some(), "{} incomplete", p.label);
            assert!(p.p99_fct_ps.unwrap() > 0);
        }
        // Phases are sequential: each admits only after the previous ends.
        for w in report.phases.windows(2) {
            assert!(w[1].admitted_tick > w[0].admitted_tick);
        }
        // A ring permutation is disjoint: everyone gets the full line rate,
        // so fairness across the ring is near-perfect.
        assert!(report.min_jain().unwrap() > 0.99, "{:?}", report.min_jain());
        // And F-NORM keeps the normalized allocation feasible.
        assert!(
            report.peak_oversubscription <= 1e-6,
            "{}",
            report.peak_oversubscription
        );
        assert_eq!(report.stats.starts, 16 * 30);
    }

    #[test]
    fn a_cut_phase_force_ends_the_previous_permutation() {
        let fabric = TwoTierClos::build(ClosConfig::multicore(2, 2, 4));
        let mut tl = ticker(&fabric);
        // Flows too big to drain inside one 50-tick rotation window, so
        // every phase but the last is cut by its successor.
        let mut scenario = flowtune_workload::PermutationShift::new(16, 1 << 24, 50, 3, 0);
        let report = run_scenario(&mut tl, &mut scenario, &ScenarioOptions::default());
        assert!(!report.truncated);
        assert_eq!(report.phases.len(), 3);
        assert_eq!(report.phases[0].cut_flows, 16);
        assert_eq!(report.phases[1].cut_flows, 16);
        assert_eq!(report.phases[2].cut_flows, 0, "last phase is never cut");
        // Cut phases never complete naturally but still report fairness.
        assert!(report.phases[0].completion_ps.is_none());
        assert!(report.phases[0].jain.unwrap() > 0.9);
        assert!(report.truncated || report.stats.ends == report.stats.starts);
    }

    #[test]
    fn the_tick_budget_truncates_an_undrainable_scenario() {
        let fabric = TwoTierClos::build(ClosConfig::multicore(2, 2, 4));
        let mut tl = ticker(&fabric);
        let mut scenario = flowtune_workload::Incast::new(vec![0, 1, 2, 3], 15, 1 << 40);
        let opts = ScenarioOptions {
            max_ticks: 50,
            ..Default::default()
        };
        let report = run_scenario(&mut tl, &mut scenario, &opts);
        assert!(report.truncated);
        assert_eq!(report.ticks, 50);
        assert!(report.phases[0].completion_ps.is_none());
    }

    #[test]
    fn the_trace_replays_into_a_twin_driver_bit_for_bit() {
        let fabric = TwoTierClos::build(ClosConfig::multicore(2, 2, 4));
        let mut tl = ticker(&fabric);
        let mut scenario = ScenarioKind::AllToAll.build(16, 100_000);
        let mut rounds: Vec<Vec<Message>> = Vec::new();
        let report = run_scenario_traced(
            &mut tl,
            scenario.as_mut(),
            &ScenarioOptions::default(),
            &mut |tick, msg| {
                let t = tick as usize;
                if rounds.len() <= t {
                    rounds.resize_with(t + 1, Vec::new);
                }
                rounds[t].push(*msg);
            },
        );
        assert!(!report.truncated);
        let mut twin = ticker(&fabric);
        for round in &rounds {
            for msg in round {
                twin.driver_mut().on_message(*msg).unwrap();
            }
            let owed = twin.next_tick_ps();
            twin.poll(owed).unwrap();
        }
        assert_eq!(twin.driver().stats().starts, report.stats.starts);
        assert_eq!(twin.driver().stats().ends, report.stats.ends);
    }
}
