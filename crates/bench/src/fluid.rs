//! Fluid-model driver for the control-plane overhead experiments
//! (Figures 5–7).
//!
//! Update-traffic volume is a property of the allocator's threshold
//! filtering and the flowlet churn, not of packet-level queueing, so these
//! figures run the *real* [`AllocatorService`] against a fluid data plane:
//! every 10 µs tick, each active flowlet drains at its currently allocated
//! (normalized) rate, and ends exactly when its bytes run out. Control
//! bytes are accounted with the real 16/4/6-byte encodings plus Ethernet
//! framing ([`flowtune_proto::wire`]).

use std::collections::HashMap;

use crate::cli::{self, WireTransport};
use flowtune::{
    AllocatorService, BoxTickDriver, Engine, FlowtuneConfig, PlacementSpec, ServiceStats,
    TickDriver, TickLoop, TrafficMatrix,
};
use flowtune_proto::{codec, wire, Message, Token};
use flowtune_topo::{ClosConfig, TwoTierClos};
use flowtune_workload::{rack_traffic_matrix, RackAffinity, TraceConfig, TraceGenerator, Workload};

/// Accounting of one fluid run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FluidStats {
    /// Payload bytes endpoint→allocator (starts + ends).
    pub payload_to_alloc: u64,
    /// Payload bytes allocator→endpoints (rate updates).
    pub payload_from_alloc: u64,
    /// Wire bytes (64-byte-min frames + preamble) endpoint→allocator.
    pub wire_to_alloc: u64,
    /// Wire bytes allocator→endpoints.
    pub wire_from_alloc: u64,
    /// Flowlets started / ended.
    pub flowlets: u64,
    /// Rate updates sent (post-filter) / suppressed.
    pub updates_sent: u64,
    /// Updates suppressed by the threshold.
    pub updates_suppressed: u64,
    /// Simulated duration, ps.
    pub duration_ps: u64,
}

impl FluidStats {
    /// Update traffic from the allocator as a fraction of total network
    /// capacity (Figure 5's y axis), where network capacity is the sum of
    /// server access links.
    pub fn from_alloc_fraction(&self, servers: usize, link_bps: u64) -> f64 {
        let secs = self.duration_ps as f64 / 1e12;
        let bits = self.wire_from_alloc as f64 * 8.0;
        bits / secs / (servers as f64 * link_bps as f64)
    }

    /// Update traffic *to* the allocator as a capacity fraction.
    pub fn to_alloc_fraction(&self, servers: usize, link_bps: u64) -> f64 {
        let secs = self.duration_ps as f64 / 1e12;
        let bits = self.wire_to_alloc as f64 * 8.0;
        bits / secs / (servers as f64 * link_bps as f64)
    }
}

/// The fluid-model experiment driver.
#[derive(Debug)]
pub struct FluidDriver {
    /// The control plane behind its cadence: [`TickLoop`] owns when the
    /// allocator ticks; this driver just advances simulated time and
    /// polls it.
    ticker: TickLoop<BoxTickDriver>,
    trace: TraceGenerator,
    servers: usize,
    /// token → remaining bytes.
    remaining: HashMap<Token, f64>,
    next_token: u32,
    stats: FluidStats,
    now_ps: u64,
}

impl FluidDriver {
    /// Builds a driver over `servers` servers (racks of 16) running
    /// `workload` at `load` with the serial reference engine.
    pub fn new(
        workload: Workload,
        load: f64,
        servers: usize,
        cfg: FlowtuneConfig,
        seed: u64,
    ) -> Self {
        Self::with_engine(workload, load, servers, cfg, seed, Engine::Serial)
    }

    /// [`FluidDriver::new`] with an explicit allocation engine (the
    /// binaries' `--engine` / `--shards` flags land here; an
    /// [`Engine::Sharded`] spec runs the real sharded control plane).
    pub fn with_engine(
        workload: Workload,
        load: f64,
        servers: usize,
        cfg: FlowtuneConfig,
        seed: u64,
        engine: Engine,
    ) -> Self {
        Self::with_affinity(workload, load, 0.0, servers, cfg, seed, engine)
    }

    /// [`FluidDriver::with_engine`] with a rack-affine workload: with
    /// probability `affinity` a flowlet's destination is drawn from the
    /// source's rack-affinity class (two interleaved classes of 16-server
    /// racks, see [`flowtune_workload::RackAffinity`]); 0.0 is the
    /// uniform workload. When the configuration asks for traffic-aware
    /// shard placement ([`FlowtuneConfig::placement`]), the placer's
    /// matrix is sampled from this same trace configuration (first 4096
    /// events — deterministic in the seed), so `--placement traffic` sees
    /// exactly the workload it will place for.
    pub fn with_affinity(
        workload: Workload,
        load: f64,
        affinity: f64,
        servers: usize,
        cfg: FlowtuneConfig,
        seed: u64,
        engine: Engine,
    ) -> Self {
        Self::with_transport(
            workload,
            load,
            affinity,
            servers,
            cfg,
            seed,
            engine,
            WireTransport::InProcess,
        )
    }

    /// [`FluidDriver::with_affinity`] with the control plane on a wire
    /// (the binaries' `--transport` flag lands here): for a wire
    /// transport a sharded engine runs as one serial-engine
    /// [`flowtune_net::ShardPeer`] per shard over that transport, driven
    /// in lockstep by a [`flowtune_net::PeerCluster`] — every rate and
    /// control byte this driver accounts then crossed the real frame
    /// codec (and, for `uds`/`tcp`, a kernel socket). Output is
    /// bit-for-bit identical to the in-process run.
    ///
    /// # Panics
    /// Wire transports run the serial engine per shard over the
    /// contiguous placement; see [`cli::wire_cluster`].
    #[allow(clippy::too_many_arguments)]
    pub fn with_transport(
        workload: Workload,
        load: f64,
        affinity: f64,
        servers: usize,
        cfg: FlowtuneConfig,
        seed: u64,
        engine: Engine,
        transport: WireTransport,
    ) -> Self {
        assert!(servers.is_multiple_of(16), "whole racks of 16 expected");
        let clos = ClosConfig {
            racks: servers / 16,
            servers_per_rack: 16,
            racks_per_block: servers / 16,
            ..ClosConfig::paper_eval()
        };
        let fabric = TwoTierClos::build(clos);
        let trace_cfg = TraceConfig {
            workload,
            load,
            servers,
            server_link_bps: 10_000_000_000,
            seed,
            affinity: (affinity > 0.0).then_some(RackAffinity {
                probability: affinity,
                ..RackAffinity::heavy()
            }),
        };
        let service = if let Some(cluster) = cli::wire_cluster(transport, &engine, &fabric, cfg) {
            cluster
        } else {
            let mut builder = AllocatorService::builder()
                .fabric(&fabric)
                .config(cfg)
                .engine(engine);
            if cfg.placement != PlacementSpec::Contiguous {
                let racks = servers / 16;
                builder = builder.traffic_matrix(TrafficMatrix::from_weights(
                    racks,
                    rack_traffic_matrix(&trace_cfg, 16, 4096),
                ));
            }
            builder
                .build_driver()
                .expect("fabric is set and the engine spec is sane")
        };
        let trace = TraceGenerator::new(trace_cfg);
        Self {
            ticker: TickLoop::new(service, cfg.tick_interval_ps),
            trace,
            servers,
            remaining: HashMap::new(),
            next_token: 0,
            stats: FluidStats::default(),
            now_ps: 0,
        }
    }

    fn account_to_alloc(&mut self, msg: &Message) {
        let len = msg.encoded_len();
        self.stats.payload_to_alloc += len as u64;
        self.stats.wire_to_alloc += wire::segment_wire_bytes(len) as u64;
    }

    /// Runs the fluid simulation for `duration_ps`, returning the
    /// accounting. A `warmup_ps` prefix is simulated but not accounted so
    /// steady-state concurrency is measured.
    pub fn run(&mut self, warmup_ps: u64, duration_ps: u64) -> FluidStats {
        self.run_sampled(warmup_ps, duration_ps, &mut |_| {})
    }

    /// [`FluidDriver::run`] with a per-tick observer: after every
    /// in-window allocator tick, `sample` sees the driver's control plane
    /// (for link-load / over-allocation telemetry, as in Figure 12).
    pub fn run_sampled(
        &mut self,
        warmup_ps: u64,
        duration_ps: u64,
        sample: &mut dyn FnMut(&dyn TickDriver),
    ) -> FluidStats {
        let tick = self.ticker.interval_ps();
        let end = warmup_ps + duration_ps;
        let mut pending = self.trace.next_event();
        let mut tokens_of_flow: HashMap<u64, Token> = HashMap::new();
        while self.now_ps < end {
            let in_window = self.now_ps >= warmup_ps;
            // Admit arrivals up to now.
            while pending.at_ps <= self.now_ps {
                let token = Token::new(self.next_token & Token::MAX);
                self.next_token = (self.next_token + 1) & Token::MAX;
                let spine = {
                    let f = self.ticker.driver().fabric();
                    f.ecmp_spine(
                        pending.src as usize,
                        pending.dst as usize,
                        flowtune_topo::FlowId(pending.id),
                    )
                };
                let msg = Message::FlowletStart {
                    token,
                    src: pending.src as u16,
                    dst: pending.dst as u16,
                    size_hint: pending.bytes.min(u32::MAX as u64) as u32,
                    weight_q8: 256,
                    spine: spine as u8,
                };
                self.ticker
                    .driver_mut()
                    .on_message(msg)
                    .expect("fluid driver mints unique tokens");
                self.remaining.insert(token, pending.bytes as f64);
                tokens_of_flow.insert(pending.id, token);
                if in_window {
                    self.stats.flowlets += 1;
                    self.account_to_alloc(&msg);
                }
                pending = self.trace.next_event();
            }

            // Allocator ticks the cadence owes at this simulated instant
            // (exactly one per loop step, since the step is the interval).
            while let Some(updates) = self.ticker.poll(self.now_ps) {
                if in_window {
                    for (_, msg) in &updates {
                        let len = msg.encoded_len();
                        self.stats.payload_from_alloc += len as u64;
                        self.stats.wire_from_alloc += wire::segment_wire_bytes(len) as u64;
                        self.stats.updates_sent += 1;
                    }
                    sample(self.ticker.driver());
                }
            }

            // Fluid drain at allocated rates.
            let dt_secs = tick as f64 / 1e12;
            let mut ended = Vec::new();
            for (&token, rem) in self.remaining.iter_mut() {
                let gbps = self.ticker.driver().flow_rate_gbps(token).unwrap_or(0.0);
                *rem -= gbps * 1e9 / 8.0 * dt_secs;
                if *rem <= 0.0 {
                    ended.push(token);
                }
            }
            for token in ended {
                self.remaining.remove(&token);
                let msg = Message::FlowletEnd { token };
                self.ticker
                    .driver_mut()
                    .on_message(msg)
                    .expect("flowlet ends are always accepted");
                if in_window {
                    self.account_to_alloc(&msg);
                }
            }

            self.now_ps += tick;
        }
        let svc = self.ticker.driver().stats();
        self.stats.updates_suppressed = svc.updates_suppressed;
        self.stats.duration_ps = duration_ps;
        self.stats
    }

    /// Fraction helpers need these.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Active flowlets right now.
    pub fn active(&self) -> usize {
        self.remaining.len()
    }

    /// The control plane's own operating counters — exchange
    /// rounds/bytes, intake, update filtering (aggregated over shards,
    /// where applicable).
    pub fn control_stats(&self) -> ServiceStats {
        self.ticker.driver().stats()
    }
}

/// Total over-capacity allocation of a control plane's current *raw*
/// rates, `Σ_ℓ max(0, load_ℓ − c_ℓ)` in Gbit/s — Figure 12's quantity,
/// measured through the service path via
/// [`TickDriver::link_loads`]. Engines that do not price fabric links
/// (Fastpass) report 0.
pub fn overallocation_gbps(drv: &dyn TickDriver) -> f64 {
    let loads = drv.link_loads();
    if loads.is_empty() {
        return 0.0;
    }
    drv.fabric()
        .topology()
        .links()
        .iter()
        .zip(&loads)
        .map(|(link, &load)| (load - link.capacity_bps as f64 / 1e9).max(0.0))
        .sum()
}

/// Encodes a message batch and returns its total payload length —
/// convenience for tests.
pub fn payload_len(msgs: &[Message]) -> usize {
    let mut buf = bytes::BytesMut::new();
    for m in msgs {
        codec::encode(m, &mut buf);
    }
    buf.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluid_run_reaches_steady_state_and_accounts() {
        let mut d = FluidDriver::new(Workload::Web, 0.5, 32, FlowtuneConfig::default(), 7);
        let stats = d.run(2_000_000_000, 10_000_000_000); // 2 ms warmup, 10 ms window
        assert!(stats.flowlets > 10, "flowlets {}", stats.flowlets);
        assert!(stats.updates_sent > 0);
        assert!(stats.wire_from_alloc > stats.payload_from_alloc);
        let frac = stats.from_alloc_fraction(32, 10_000_000_000);
        assert!(frac > 0.0 && frac < 0.2, "fraction {frac}");
    }

    #[test]
    fn fluid_runs_under_every_engine() {
        for engine in [
            Engine::Serial,
            Engine::Multicore { workers: 1 },
            Engine::Fastpass,
            Engine::Gradient,
            Engine::Serial.sharded(2),
        ] {
            let mut d = FluidDriver::with_engine(
                Workload::Web,
                0.4,
                32,
                FlowtuneConfig::default(),
                5,
                engine.clone(),
            );
            let stats = d.run(1_000_000_000, 4_000_000_000);
            assert!(stats.flowlets > 0, "{}: no flowlets", engine.name());
            assert!(stats.updates_sent > 0, "{}: no updates", engine.name());
        }
    }

    #[test]
    fn traffic_placement_runs_and_reports_exchange_stats() {
        let cfg = FlowtuneConfig {
            exchange_every: 1,
            placement: PlacementSpec::Traffic { refine: true },
            ..FlowtuneConfig::default()
        };
        let mut d = FluidDriver::with_affinity(
            Workload::Web,
            0.4,
            0.9,
            32,
            cfg,
            5,
            Engine::Serial.sharded(2),
        );
        let stats = d.run(1_000_000_000, 4_000_000_000);
        assert!(stats.flowlets > 0);
        let svc = d.control_stats();
        assert!(svc.exchange_rounds > 0, "exchange must run");
        assert!(svc.exchange_bytes > 0);
    }

    #[test]
    fn wire_transport_run_is_bit_for_bit_the_in_process_run() {
        let cfg = FlowtuneConfig {
            exchange_every: 1,
            ..FlowtuneConfig::default()
        };
        let run = |transport: WireTransport| {
            let mut d = FluidDriver::with_transport(
                Workload::Web,
                0.5,
                0.0,
                32,
                cfg,
                9,
                Engine::Serial.sharded(2),
                transport,
            );
            let stats = d.run(1_000_000_000, 4_000_000_000);
            (stats, d.control_stats())
        };
        let (inproc, inproc_svc) = run(WireTransport::InProcess);
        let (mem, mem_svc) = run(WireTransport::Mem);
        assert_eq!(inproc, mem, "fluid accounting must not see the wire");
        assert_eq!(inproc_svc, mem_svc, "control-plane stats must match");
        assert!(mem_svc.exchange_rounds > 0, "exchange must have run");
    }

    #[test]
    fn higher_threshold_cuts_update_traffic() {
        let run = |threshold: f64| {
            let cfg = FlowtuneConfig {
                update_threshold: threshold,
                ..FlowtuneConfig::default()
            };
            let mut d = FluidDriver::new(Workload::Web, 0.6, 32, cfg, 11);
            d.run(2_000_000_000, 10_000_000_000)
        };
        let t1 = run(0.01);
        let t5 = run(0.05);
        assert!(
            t5.updates_sent < t1.updates_sent,
            "0.05 sent {} vs 0.01 sent {}",
            t5.updates_sent,
            t1.updates_sent
        );
    }

    #[test]
    fn web_generates_more_updates_than_hadoop() {
        let run = |w: Workload| {
            let mut d = FluidDriver::new(w, 0.6, 32, FlowtuneConfig::default(), 3);
            d.run(2_000_000_000, 10_000_000_000)
        };
        let web = run(Workload::Web);
        let hadoop = run(Workload::Hadoop);
        assert!(
            web.wire_from_alloc > hadoop.wire_from_alloc,
            "web {} vs hadoop {}",
            web.wire_from_alloc,
            hadoop.wire_from_alloc
        );
    }

    #[test]
    fn payload_len_matches_encodings() {
        let msgs = [
            Message::FlowletEnd {
                token: Token::new(1),
            },
            Message::FlowletEnd {
                token: Token::new(2),
            },
        ];
        assert_eq!(payload_len(&msgs), 8);
    }
}
