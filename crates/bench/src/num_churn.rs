//! Flowlet churn driver in the NUM domain, for the §6.6 normalization
//! experiments (Figures 12 and 13): a stream of flowlets arrives and
//! drains (fluid model) while a chosen optimizer iterates online, exactly
//! like the allocator does — warm-starting from the previous prices at
//! every change.

use std::collections::HashMap;

use flowtune_num::{solver::update_rates, FlowIdx, NumProblem, Optimizer, SolverState, Utility};
use flowtune_topo::{ClosConfig, FlowId, TwoTierClos};
use flowtune_workload::{FlowletEvent, TraceConfig, TraceGenerator, Workload};

/// One tick's measurements.
#[derive(Debug, Clone, Copy)]
pub struct ChurnTick {
    /// Total over-capacity allocation across links, Gbit/s (Figure 12).
    pub overallocation_gbps: f64,
    /// Active flow count.
    pub active: usize,
}

/// The churn driver.
#[derive(Debug)]
pub struct NumChurn {
    fabric: TwoTierClos,
    /// The live instance the optimizer works on.
    pub problem: NumProblem,
    trace: TraceGenerator,
    pending: FlowletEvent,
    /// flow idx → remaining bytes.
    remaining: HashMap<FlowIdx, f64>,
    tick_ps: u64,
    now_ps: u64,
}

impl NumChurn {
    /// Builds the driver on the paper's evaluation fabric at `load`.
    pub fn new(workload: Workload, load: f64, seed: u64) -> Self {
        let fabric = TwoTierClos::build(ClosConfig::paper_eval());
        let caps_gbps: Vec<f64> = fabric
            .topology()
            .links()
            .iter()
            .map(|l| l.capacity_bps as f64 / 1e9)
            .collect();
        let problem = NumProblem::new(caps_gbps);
        let mut trace = TraceGenerator::new(TraceConfig {
            workload,
            load,
            servers: fabric.config().server_count(),
            server_link_bps: 10_000_000_000,
            seed,
            affinity: None,
        });
        let pending = trace.next_event();
        Self {
            fabric,
            problem,
            trace,
            pending,
            remaining: HashMap::new(),
            tick_ps: 10_000_000, // 10 µs, like the allocator
            now_ps: 0,
        }
    }

    /// Advances one 10 µs tick: admits arrivals, runs one optimizer
    /// iteration, drains flows at their (raw) allocated rates, removes
    /// finished flows.
    pub fn advance(&mut self, opt: &mut dyn Optimizer, state: &mut SolverState) -> ChurnTick {
        // Arrivals.
        while self.pending.at_ps <= self.now_ps {
            let e = self.pending;
            let path = self
                .fabric
                .path(e.src as usize, e.dst as usize, FlowId(e.id));
            let idx = self
                .problem
                .add_flow(path.links().to_vec(), Utility::log(1.0));
            self.remaining.insert(idx, e.bytes as f64);
            self.pending = self.trace.next_event();
        }
        state.fit(&self.problem);

        // One online iteration, then refresh rates from the new prices so
        // the over-allocation measurement reflects what endpoints would be
        // told this tick.
        opt.iterate(&self.problem, state);
        update_rates(&self.problem, &state.prices, &mut state.rates);
        let over = self.problem.total_overallocation(&state.rates);

        // Fluid drain.
        let dt = self.tick_ps as f64 / 1e12;
        let mut done = Vec::new();
        for (&idx, rem) in self.remaining.iter_mut() {
            *rem -= state.rates[idx] * 1e9 / 8.0 * dt;
            if *rem <= 0.0 {
                done.push(idx);
            }
        }
        for idx in done {
            self.remaining.remove(&idx);
            self.problem.remove_flow(idx);
        }
        self.now_ps += self.tick_ps;
        ChurnTick {
            overallocation_gbps: over,
            active: self.remaining.len(),
        }
    }

    /// Current simulated time, ps.
    pub fn now_ps(&self) -> u64 {
        self.now_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_num::Ned;

    #[test]
    fn churn_driver_sustains_flows() {
        let mut churn = NumChurn::new(Workload::Web, 0.5, 3);
        let mut ned = Ned::new(0.4);
        let mut state = SolverState::new(&churn.problem);
        let mut saw_active = false;
        for _ in 0..500 {
            let t = churn.advance(&mut ned, &mut state);
            assert!(t.overallocation_gbps >= 0.0);
            if t.active > 0 {
                saw_active = true;
            }
        }
        assert!(saw_active, "flows should arrive within 5 ms at load 0.5");
    }

    #[test]
    fn ned_overallocation_settles_low_between_events() {
        let mut churn = NumChurn::new(Workload::Cache, 0.3, 9);
        let mut ned = Ned::new(0.4);
        let mut state = SolverState::new(&churn.problem);
        let mut total = 0.0;
        let mut n = 0;
        for i in 0..1000 {
            let t = churn.advance(&mut ned, &mut state);
            if i > 200 {
                total += t.overallocation_gbps;
                n += 1;
            }
        }
        let mean = total / n as f64;
        // 144 servers × 10 G = 1.44 Tbit/s of access capacity; mean
        // over-allocation must be a tiny fraction of it.
        assert!(mean < 100.0, "mean over-allocation {mean} Gbit/s");
    }
}
