//! Minimal flag parsing shared by the experiment binaries.

/// Common experiment options.
#[derive(Debug, Clone, Copy)]
pub struct Opts {
    /// Reduced scale (default) vs paper scale.
    pub quick: bool,
    /// Trace seed.
    pub seed: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            quick: true,
            seed: 42,
        }
    }
}

impl Opts {
    /// Parses `--quick`, `--full` and `--seed N` from `std::env::args`.
    ///
    /// # Panics
    /// Panics with a usage message on unknown flags.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut opts = Self::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => opts.quick = true,
                "--full" => opts.quick = false,
                "--seed" => {
                    let v = it.next().expect("--seed needs a value");
                    opts.seed = v.parse().expect("--seed needs an integer");
                }
                other => panic!("unknown flag {other}; use --quick|--full|--seed N"),
            }
        }
        opts
    }

    /// Scale a paper-sized quantity down in quick mode.
    pub fn scaled(&self, full: u64, quick: u64) -> u64 {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Opts {
        Opts::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_quick() {
        let o = parse(&[]);
        assert!(o.quick);
        assert_eq!(o.seed, 42);
    }

    #[test]
    fn full_and_seed() {
        let o = parse(&["--full", "--seed", "7"]);
        assert!(!o.quick);
        assert_eq!(o.seed, 7);
        assert_eq!(o.scaled(100, 10), 100);
        assert_eq!(parse(&["--quick"]).scaled(100, 10), 10);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = parse(&["--wat"]);
    }
}
