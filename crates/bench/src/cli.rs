//! Minimal flag parsing shared by the experiment binaries.

use flowtune::{Engine, FlowtuneConfig};

/// Common experiment options.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Reduced scale (default) vs paper scale.
    pub quick: bool,
    /// Trace seed.
    pub seed: u64,
    /// Allocation engine behind the `AllocatorService`
    /// (`--engine serial|multicore|fastpass|gradient`, optionally wrapped
    /// in `Engine::Sharded` by `--shards N`).
    pub engine: Engine,
    /// Inter-shard link-state exchange cadence in ticks
    /// (`--exchange-every K`; 0 — the default — disables the exchange).
    /// Only affects sharded runs (`--shards ≥ 2`).
    pub exchange_every: u64,
    /// The exchange's delta filter (`--exchange-delta-eps X`; 0 — the
    /// default — re-ships any changed link). A shard re-ships a link's
    /// state only when its load, dual or Hessian moved by more than
    /// this since the last shipped values. Only affects exchanging
    /// sharded runs.
    pub exchange_delta_eps: f64,
    /// Whether the sharded control plane ticks its shards concurrently
    /// on per-shard OS threads (`--parallel-shards` to force on,
    /// `--parallel-shards=off` to force the sequential fallback; `None` —
    /// the default — leaves the config default, which is on). The output
    /// is bit-for-bit identical either way. Only affects sharded runs.
    pub parallel_shards: Option<bool>,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            quick: true,
            seed: 42,
            engine: Engine::Serial,
            exchange_every: 0,
            exchange_delta_eps: 0.0,
            parallel_shards: None,
        }
    }
}

impl Opts {
    /// Parses `--quick`, `--full`, `--seed N`,
    /// `--engine serial|multicore|fastpass|gradient`, `--workers N`
    /// (multicore thread cap; 0 = size to the host), `--shards N`
    /// (shard the service N ways over the chosen engine),
    /// `--exchange-every K` (inter-shard link-state exchange cadence in
    /// ticks; 0 disables), `--exchange-delta-eps X` (the exchange's
    /// delta filter: re-ship a link only when its load, dual or Hessian
    /// moved by more than X; 0 re-ships any change) and
    /// `--parallel-shards[=on|off]` (concurrent vs sequential sharded
    /// tick; defaults to the config default, on) from `std::env::args`.
    ///
    /// # Panics
    /// Panics with a usage message on unknown flags or engine names (the
    /// engine message lists the valid names).
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut opts = Self::default();
        let mut workers: Option<usize> = None;
        let mut shards: Option<usize> = None;
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => opts.quick = true,
                "--full" => opts.quick = false,
                "--seed" => {
                    let v = it.next().expect("--seed needs a value");
                    opts.seed = v.parse().expect("--seed needs an integer");
                }
                "--engine" => {
                    let v = it.next().expect("--engine needs a value");
                    opts.engine = Engine::parse(&v).unwrap_or_else(|e| panic!("{e}"));
                }
                "--workers" => {
                    let v = it.next().expect("--workers needs a value");
                    workers = Some(v.parse().expect("--workers needs an integer"));
                }
                "--shards" => {
                    let v = it.next().expect("--shards needs a value");
                    shards = Some(v.parse().expect("--shards needs an integer"));
                }
                "--exchange-every" => {
                    let v = it.next().expect("--exchange-every needs a value");
                    opts.exchange_every =
                        v.parse().expect("--exchange-every needs an integer");
                }
                "--exchange-delta-eps" => {
                    let v = it.next().expect("--exchange-delta-eps needs a value");
                    let eps: f64 = v.parse().expect("--exchange-delta-eps needs a number");
                    assert!(
                        eps >= 0.0 && eps.is_finite(),
                        "--exchange-delta-eps needs a finite non-negative number"
                    );
                    opts.exchange_delta_eps = eps;
                }
                "--parallel-shards" | "--parallel-shards=on" | "--parallel-shards=true" => {
                    opts.parallel_shards = Some(true);
                }
                "--parallel-shards=off" | "--parallel-shards=false" => {
                    opts.parallel_shards = Some(false);
                }
                other => panic!(
                    "unknown flag {other}; use --quick|--full|--seed N|--engine E|--workers N|--shards N|--exchange-every K|--exchange-delta-eps X|--parallel-shards[=on|off]"
                ),
            }
        }
        if let Some(w) = workers {
            match &mut opts.engine {
                Engine::Multicore { workers } => *workers = w,
                _ => panic!("--workers only applies to --engine multicore"),
            }
        }
        if let Some(n) = shards {
            assert!(n >= 1, "--shards needs at least 1 shard");
            opts.engine = opts.engine.sharded(n);
        }
        opts
    }

    /// Scale a paper-sized quantity down in quick mode.
    pub fn scaled(&self, full: u64, quick: u64) -> u64 {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// The control-plane configuration these options describe: paper
    /// defaults with the `--exchange-every` cadence,
    /// `--exchange-delta-eps` filter and `--parallel-shards` choice
    /// applied.
    pub fn config(&self) -> FlowtuneConfig {
        let defaults = FlowtuneConfig::default();
        FlowtuneConfig {
            exchange_every: self.exchange_every,
            exchange_delta_eps: self.exchange_delta_eps,
            parallel_shards: self.parallel_shards.unwrap_or(defaults.parallel_shards),
            ..defaults
        }
    }

    /// The shape shared by the figures' sharded comparison rows: the
    /// base (inner) engine — `--engine`, unwrapped if the caller already
    /// passed `--shards` — the shard count (`--shards`, default 2), and
    /// the exchange cadence of the exchanging row (`--exchange-every`,
    /// floored at 1 so that row always exchanges). Keeping fig12 and
    /// fig13 on this one helper keeps their row labels and defaults
    /// comparable.
    pub fn sharded_comparison(&self) -> (Engine, usize, u64) {
        let (base, shards) = match self.engine.clone() {
            Engine::Sharded { shards, inner } => (*inner, shards),
            engine => (engine, 2),
        };
        (base, shards, self.exchange_every.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Opts {
        Opts::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_quick_serial() {
        let o = parse(&[]);
        assert!(o.quick);
        assert_eq!(o.seed, 42);
        assert_eq!(o.engine, Engine::Serial);
    }

    #[test]
    fn full_and_seed() {
        let o = parse(&["--full", "--seed", "7"]);
        assert!(!o.quick);
        assert_eq!(o.seed, 7);
        assert_eq!(o.scaled(100, 10), 100);
        assert_eq!(parse(&["--quick"]).scaled(100, 10), 10);
    }

    #[test]
    fn engine_flags_parse() {
        assert_eq!(parse(&["--engine", "serial"]).engine, Engine::Serial);
        assert_eq!(parse(&["--engine", "fastpass"]).engine, Engine::Fastpass);
        assert_eq!(
            parse(&["--engine", "multicore"]).engine,
            Engine::Multicore { workers: 0 }
        );
        // --workers composes with multicore, in either flag order.
        assert_eq!(
            parse(&["--engine", "multicore", "--workers", "4"]).engine,
            Engine::Multicore { workers: 4 }
        );
        assert_eq!(
            parse(&["--workers", "2", "--engine", "multicore"]).engine,
            Engine::Multicore { workers: 2 }
        );
    }

    #[test]
    fn shards_compose_over_any_engine() {
        assert_eq!(
            parse(&["--engine", "gradient", "--shards", "4"]).engine,
            Engine::Gradient.sharded(4)
        );
        // Flag order doesn't matter, and --workers still reaches the
        // inner multicore engine.
        assert_eq!(
            parse(&["--shards", "2", "--engine", "multicore", "--workers", "3"]).engine,
            Engine::Multicore { workers: 3 }.sharded(2)
        );
        assert_eq!(parse(&["--shards", "1"]).engine, Engine::Serial.sharded(1));
    }

    #[test]
    fn exchange_every_reaches_the_config() {
        let o = parse(&["--shards", "2", "--exchange-every", "4"]);
        assert_eq!(o.exchange_every, 4);
        assert_eq!(o.config().exchange_every, 4);
        // Default is off, and everything else keeps the paper values.
        let d = parse(&[]);
        assert_eq!(d.exchange_every, 0);
        assert_eq!(d.config(), flowtune::FlowtuneConfig::default());
    }

    #[test]
    fn parallel_shards_and_delta_eps_reach_the_config() {
        // Default: flag absent leaves the config default (on).
        let d = parse(&[]);
        assert_eq!(d.parallel_shards, None);
        assert!(d.config().parallel_shards);
        assert_eq!(d.config().exchange_delta_eps, 0.0);
        // Bare flag and =on force the concurrent path.
        assert_eq!(parse(&["--parallel-shards"]).parallel_shards, Some(true));
        assert!(parse(&["--parallel-shards=on"]).config().parallel_shards);
        // =off forces the sequential fallback.
        let off = parse(&["--parallel-shards=off"]);
        assert_eq!(off.parallel_shards, Some(false));
        assert!(!off.config().parallel_shards);
        // The delta filter composes with the rest of the exchange flags.
        let o = parse(&[
            "--shards",
            "4",
            "--exchange-every",
            "1",
            "--exchange-delta-eps",
            "0.5",
        ]);
        assert_eq!(o.exchange_delta_eps, 0.5);
        assert_eq!(o.config().exchange_delta_eps, 0.5);
        assert_eq!(o.config().exchange_every, 1);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_delta_eps_panics() {
        let _ = parse(&["--exchange-delta-eps", "-1.0"]);
    }

    #[test]
    #[should_panic(expected = "at least 1 shard")]
    fn zero_shards_panics() {
        let _ = parse(&["--shards", "0"]);
    }

    #[test]
    #[should_panic(expected = "unknown engine")]
    fn bad_engine_panics() {
        let _ = parse(&["--engine", "quantum"]);
    }

    #[test]
    #[should_panic(expected = "valid engines: serial, multicore, fastpass, gradient")]
    fn bad_engine_message_lists_valid_names() {
        let _ = parse(&["--engine", "quantum"]);
    }

    #[test]
    #[should_panic(expected = "only applies to --engine multicore")]
    fn workers_without_multicore_panics() {
        let _ = parse(&["--engine", "serial", "--workers", "2"]);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = parse(&["--wat"]);
    }
}
