//! Minimal flag parsing shared by the experiment binaries.

use flowtune::{
    AllocatorService, BoxTickDriver, Engine, ExchangeConfig, FlowtuneConfig, PlacementSpec,
};
use flowtune_net::{mem_mesh, tcp_mesh, uds_mesh, PeerCluster, ShardPeer, Transport};
use flowtune_topo::TwoTierClos;
use flowtune_workload::ScenarioKind;

/// The experiment binaries' shared usage text (`--help`). Every
/// [`FlowtuneConfig`] knob the CLI can set appears here with its flag —
/// audited by the `every_config_knob_has_a_documented_flag` test, so a
/// knob added to [`Opts::config`] without a usage line fails the build's
/// tests rather than shipping undocumented.
pub const USAGE: &str = "\
shared experiment flags:
  --quick                 reduced scale (default)
  --full                  paper scale
  --seed N                trace seed (default 42)
  --engine E              allocation engine: serial|multicore|fastpass|gradient
  --workers N             multicore engine thread cap (0 = size to host)
  --shards N              shard the control plane N ways over --engine
  --exchange-every K      inter-shard link-state exchange cadence in ticks
                          (config exchange_every; 0 = off, the default)
  --exchange-delta-eps X  exchange delta filter: re-ship a link only when its
                          load, dual or Hessian moved by more than X
                          (config exchange_delta_eps; default 0 = any change)
  --parallel-shards[=on|off]
                          concurrent vs sequential sharded tick, bit-for-bit
                          identical output (config parallel_shards; default on)
  --incremental[=on|off]  incremental NED ticks: only flows whose links moved
                          are recomputed; quiet ticks cost O(changed), not
                          O(flows) (config incremental; default off; at
                          --dirty-eps 0 bit-for-bit equal to the full sweep)
  --full-sweep-every K    incremental only: force a full rate-pass sweep every
                          K iterations to bound float drift under a positive
                          dirty eps (config full_sweep_every; default 64;
                          0 = never)
  --dirty-eps X           incremental only: price/ratio moves at or below X
                          do not re-dirty a link's flows (config dirty_eps;
                          default 0 = exact equivalence)
  --transport T           wire for the sharded control plane:
                          inproc|mem|uds|tcp (default inproc = the in-process
                          ShardedService; the others run one ShardPeer per
                          shard over that transport — serial engine only;
                          honored by the fluid-driver figures fig5/6/7/12 and
                          service_tick, rejected by the packet-sim binaries)
  --placement P           endpoint-to-shard placement:
                          contiguous|traffic|traffic:refine
                          (config placement; default contiguous; traffic
                          groups communicating racks from the workload's
                          sampled traffic matrix)
  --pair-affinity F       rack-affine workload skew in [0,1]: probability a
                          flowlet's destination stays in its source's
                          interleaved rack class (default 0 = uniform)
  --scenario S            restrict the scenario table (fig14_scenarios) to one
                          scenario family: allreduce:ring|allreduce:tree|
                          alltoall|burst|permshift|incast (default: every
                          family; other binaries ignore the flag)
  --help                  print this help and exit";

/// The wire the sharded control plane runs over (`--transport`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireTransport {
    /// The in-process `ShardedService` (the default): shards are plain
    /// struct fields and the exchange is a buffer handoff.
    #[default]
    InProcess,
    /// One `ShardPeer` per shard over the in-memory channel mesh — the
    /// wire codec and peer runtime with no kernel in the path.
    Mem,
    /// One `ShardPeer` per shard over Unix-domain sockets.
    Uds,
    /// One `ShardPeer` per shard over loopback TCP.
    Tcp,
}

impl WireTransport {
    /// Parses a `--transport` value.
    ///
    /// # Errors
    /// Unknown name; the message lists the valid ones.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "inproc" | "in-process" => Ok(Self::InProcess),
            "mem" => Ok(Self::Mem),
            "uds" => Ok(Self::Uds),
            "tcp" => Ok(Self::Tcp),
            other => Err(format!(
                "unknown transport `{other}`; valid transports: inproc, mem, uds, tcp"
            )),
        }
    }
}

/// Builds the sharded control plane `transport` asks for over `fabric`
/// with exactly `cfg`: one serial-engine [`ShardPeer`] per shard, driven
/// in lockstep by a [`PeerCluster`]. Returns `None` for
/// [`WireTransport::InProcess`] — callers keep their existing
/// `AllocatorService::builder()` path, so wire support is purely
/// additive. Taking `cfg` (rather than deriving it from [`Opts`]) lets
/// the figure drivers put *their* per-row configuration on the wire; the
/// flag-derived entry point is [`Opts::wire_driver`].
///
/// # Panics
/// The wire transports run one serial-engine service per shard: panics
/// when `engine` asks for anything else, when `cfg` asks for a
/// non-contiguous placement (the peers bootstrap with the contiguous
/// endpoint map; re-placement is a runtime epoch, not a config knob),
/// and on transport setup failure (socket dir, port probe, mesh
/// bootstrap).
pub fn wire_cluster(
    transport: WireTransport,
    engine: &Engine,
    fabric: &TwoTierClos,
    cfg: FlowtuneConfig,
) -> Option<BoxTickDriver> {
    use std::time::Duration;

    if transport == WireTransport::InProcess {
        return None;
    }
    let shards = match engine {
        Engine::Sharded { shards, inner } => {
            assert_eq!(
                **inner,
                Engine::Serial,
                "--transport {transport:?} runs the serial engine per shard; \
                 got --engine {inner:?}"
            );
            *shards
        }
        Engine::Serial => 1,
        other => panic!(
            "--transport {transport:?} runs the serial engine per shard; got --engine {other:?}"
        ),
    };
    assert_eq!(
        cfg.placement,
        PlacementSpec::Contiguous,
        "--transport {transport:?} bootstraps the contiguous endpoint map; \
         --placement traffic is in-process only"
    );
    let timeout = Duration::from_secs(5);
    fn cluster<T: Transport + 'static>(
        fabric: &TwoTierClos,
        cfg: FlowtuneConfig,
        timeout: std::time::Duration,
        transports: Vec<T>,
    ) -> PeerCluster<T> {
        let exchange = ExchangeConfig::from_flowtune(&cfg).round_timeout(timeout);
        let peers = transports
            .into_iter()
            .map(|t| {
                ShardPeer::new(AllocatorService::new(fabric, cfg), t, exchange)
                    .expect("bench mesh transports split infallibly")
            })
            .collect();
        PeerCluster::from_peers(peers)
    }
    match transport {
        WireTransport::InProcess => unreachable!("handled above"),
        WireTransport::Mem => Some(Box::new(cluster(fabric, cfg, timeout, mem_mesh(shards)))),
        WireTransport::Uds => {
            static NEXT_MESH: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "flowtune-bench-uds-{}-{}",
                std::process::id(),
                NEXT_MESH.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).expect("create uds socket dir");
            let transports = uds_mesh(&dir, shards as u16).expect("uds mesh bootstrap");
            let built = cluster(fabric, cfg, timeout, transports);
            // The streams are connected; the socket files have done
            // their job.
            let _ = std::fs::remove_dir_all(&dir);
            Some(Box::new(built))
        }
        WireTransport::Tcp => {
            // Probe a free run of loopback ports off a kernel-picked
            // base.
            let base = (0..16)
                .find_map(|_| {
                    let probe =
                        std::net::TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0)).ok()?;
                    let base = probe.local_addr().ok()?.port();
                    drop(probe);
                    base.checked_add(shards as u16)?;
                    (0..shards as u16)
                        .map(|i| {
                            std::net::TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, base + i))
                        })
                        .all(|r| r.is_ok())
                        .then_some(base)
                })
                .expect("no free loopback port run for the tcp mesh");
            Some(Box::new(cluster(
                fabric,
                cfg,
                timeout,
                tcp_mesh(base, shards as u16).expect("tcp mesh bootstrap"),
            )))
        }
    }
}

/// Common experiment options.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Reduced scale (default) vs paper scale.
    pub quick: bool,
    /// Trace seed.
    pub seed: u64,
    /// Allocation engine behind the `AllocatorService`
    /// (`--engine serial|multicore|fastpass|gradient`, optionally wrapped
    /// in `Engine::Sharded` by `--shards N`).
    pub engine: Engine,
    /// Inter-shard link-state exchange cadence in ticks
    /// (`--exchange-every K`; 0 — the default — disables the exchange).
    /// Only affects sharded runs (`--shards ≥ 2`).
    pub exchange_every: u64,
    /// The exchange's delta filter (`--exchange-delta-eps X`; 0 — the
    /// default — re-ships any changed link). A shard re-ships a link's
    /// state only when its load, dual or Hessian moved by more than
    /// this since the last shipped values. Only affects exchanging
    /// sharded runs.
    pub exchange_delta_eps: f64,
    /// Whether the sharded control plane ticks its shards concurrently
    /// on per-shard OS threads (`--parallel-shards` to force on,
    /// `--parallel-shards=off` to force the sequential fallback; `None` —
    /// the default — leaves the config default, which is on). The output
    /// is bit-for-bit identical either way. Only affects sharded runs.
    pub parallel_shards: Option<bool>,
    /// Endpoint-to-shard placement
    /// (`--placement contiguous|traffic|traffic:refine`; contiguous —
    /// the default — is the historical equal-range split). Traffic
    /// placement groups communicating racks into the same shard from the
    /// workload's sampled traffic matrix. Only affects sharded runs.
    pub placement: PlacementSpec,
    /// Rack-affine workload skew (`--pair-affinity F` in `[0, 1]`; 0 —
    /// the default — keeps destinations uniform): the probability a
    /// flowlet's destination is drawn from its source's interleaved rack
    /// class, the communicating-racks structure traffic placement
    /// exploits.
    pub pair_affinity: f64,
    /// The wire the sharded control plane runs over (`--transport
    /// inproc|mem|uds|tcp`; inproc — the default — is the in-process
    /// `ShardedService`). The wire choices drive the identical exchange
    /// through the serialized frame codec and a real transport; see
    /// [`Opts::wire_driver`]. Only affects sharded runs.
    pub transport: WireTransport,
    /// Incremental NED ticks (`--incremental` to force on,
    /// `--incremental=off` to force off; `None` — the default — leaves
    /// the config default, which is off). With `--dirty-eps 0` the
    /// output is bit-for-bit identical to the full sweep.
    pub incremental: Option<bool>,
    /// Incremental full-sweep cadence in iterations
    /// (`--full-sweep-every K`; `None` — the default — leaves the config
    /// default). Only affects incremental runs.
    pub full_sweep_every: Option<u64>,
    /// Incremental dirty threshold (`--dirty-eps X`; `None` — the
    /// default — leaves the config default of 0, exact equivalence).
    /// Only affects incremental runs.
    pub dirty_eps: Option<f64>,
    /// Scenario-family filter for the scenario table
    /// (`--scenario allreduce:ring|allreduce:tree|alltoall|burst|
    /// permshift|incast`; `None` — the default — runs every family).
    /// Only `fig14_scenarios` reads it; other binaries ignore the flag.
    pub scenario: Option<ScenarioKind>,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            quick: true,
            seed: 42,
            engine: Engine::Serial,
            exchange_every: 0,
            exchange_delta_eps: 0.0,
            parallel_shards: None,
            placement: PlacementSpec::Contiguous,
            pair_affinity: 0.0,
            transport: WireTransport::InProcess,
            incremental: None,
            full_sweep_every: None,
            dirty_eps: None,
            scenario: None,
        }
    }
}

impl Opts {
    /// Parses the shared experiment flags (see [`USAGE`] for the full
    /// list: scale/seed, engine composition, sharding, the exchange
    /// knobs, placement and workload affinity) from `std::env::args`.
    /// `--help` prints [`USAGE`] and exits.
    ///
    /// # Panics
    /// Panics with the usage text on unknown flags, and with messages
    /// listing the valid names on unknown engine or placement values.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut opts = Self::default();
        let mut workers: Option<usize> = None;
        let mut shards: Option<usize> = None;
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => opts.quick = true,
                "--full" => opts.quick = false,
                "--seed" => {
                    let v = it.next().expect("--seed needs a value");
                    opts.seed = v.parse().expect("--seed needs an integer");
                }
                "--engine" => {
                    let v = it.next().expect("--engine needs a value");
                    // The full usage rides along so the error names every
                    // composition flag (--shards, the exchange knobs,
                    // --placement), not just the engine names.
                    opts.engine = Engine::parse(&v).unwrap_or_else(|e| panic!("{e}\n{USAGE}"));
                }
                "--workers" => {
                    let v = it.next().expect("--workers needs a value");
                    workers = Some(v.parse().expect("--workers needs an integer"));
                }
                "--shards" => {
                    let v = it.next().expect("--shards needs a value");
                    shards = Some(v.parse().expect("--shards needs an integer"));
                }
                "--exchange-every" => {
                    let v = it.next().expect("--exchange-every needs a value");
                    opts.exchange_every = v.parse().expect("--exchange-every needs an integer");
                }
                "--exchange-delta-eps" => {
                    let v = it.next().expect("--exchange-delta-eps needs a value");
                    let eps: f64 = v.parse().expect("--exchange-delta-eps needs a number");
                    assert!(
                        eps >= 0.0 && eps.is_finite(),
                        "--exchange-delta-eps needs a finite non-negative number"
                    );
                    opts.exchange_delta_eps = eps;
                }
                "--parallel-shards" | "--parallel-shards=on" | "--parallel-shards=true" => {
                    opts.parallel_shards = Some(true);
                }
                "--parallel-shards=off" | "--parallel-shards=false" => {
                    opts.parallel_shards = Some(false);
                }
                "--incremental" | "--incremental=on" | "--incremental=true" => {
                    opts.incremental = Some(true);
                }
                "--incremental=off" | "--incremental=false" => {
                    opts.incremental = Some(false);
                }
                "--full-sweep-every" => {
                    let v = it.next().expect("--full-sweep-every needs a value");
                    opts.full_sweep_every =
                        Some(v.parse().expect("--full-sweep-every needs an integer"));
                }
                "--dirty-eps" => {
                    let v = it.next().expect("--dirty-eps needs a value");
                    let eps: f64 = v.parse().expect("--dirty-eps needs a number");
                    assert!(
                        eps >= 0.0 && eps.is_finite(),
                        "--dirty-eps needs a finite non-negative number"
                    );
                    opts.dirty_eps = Some(eps);
                }
                "--placement" => {
                    let v = it.next().expect("--placement needs a value");
                    opts.placement =
                        PlacementSpec::parse(&v).unwrap_or_else(|e| panic!("{e}\n{USAGE}"));
                }
                "--transport" => {
                    let v = it.next().expect("--transport needs a value");
                    opts.transport =
                        WireTransport::parse(&v).unwrap_or_else(|e| panic!("{e}\n{USAGE}"));
                }
                "--scenario" => {
                    let v = it.next().expect("--scenario needs a value");
                    opts.scenario =
                        Some(ScenarioKind::parse(&v).unwrap_or_else(|e| panic!("{e}\n{USAGE}")));
                }
                "--pair-affinity" => {
                    let v = it.next().expect("--pair-affinity needs a value");
                    let p: f64 = v.parse().expect("--pair-affinity needs a number");
                    assert!(
                        (0.0..=1.0).contains(&p),
                        "--pair-affinity needs a probability in [0, 1]"
                    );
                    opts.pair_affinity = p;
                }
                "--help" | "-h" => {
                    println!("{USAGE}");
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}\n{USAGE}"),
            }
        }
        if let Some(w) = workers {
            match &mut opts.engine {
                Engine::Multicore { workers } => *workers = w,
                _ => panic!("--workers only applies to --engine multicore"),
            }
        }
        if let Some(n) = shards {
            assert!(n >= 1, "--shards needs at least 1 shard");
            opts.engine = opts.engine.sharded(n);
        }
        opts
    }

    /// Scale a paper-sized quantity down in quick mode.
    pub fn scaled(&self, full: u64, quick: u64) -> u64 {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// The control-plane configuration these options describe: paper
    /// defaults with the `--exchange-every` cadence,
    /// `--exchange-delta-eps` filter, `--parallel-shards` choice and
    /// `--placement` spec applied.
    pub fn config(&self) -> FlowtuneConfig {
        let defaults = FlowtuneConfig::default();
        FlowtuneConfig {
            exchange_every: self.exchange_every,
            exchange_delta_eps: self.exchange_delta_eps,
            parallel_shards: self.parallel_shards.unwrap_or(defaults.parallel_shards),
            placement: self.placement,
            incremental: self.incremental.unwrap_or(defaults.incremental),
            full_sweep_every: self.full_sweep_every.unwrap_or(defaults.full_sweep_every),
            dirty_eps: self.dirty_eps.unwrap_or(defaults.dirty_eps),
            ..defaults
        }
    }

    /// Builds the control-plane driver a wire `--transport` asks for:
    /// one serial-engine `ShardPeer` per shard over the chosen
    /// transport, driven in lockstep by a `PeerCluster`. Returns `None`
    /// for the default in-process transport — callers keep their
    /// existing `AllocatorService::builder()` path, so the flag is
    /// purely additive.
    ///
    /// # Panics
    /// See [`wire_cluster`].
    pub fn wire_driver(&self, fabric: &TwoTierClos) -> Option<BoxTickDriver> {
        wire_cluster(self.transport, &self.engine, fabric, self.config())
    }

    /// Panics when a wire `--transport` was requested: `bin` drives a
    /// surface (packet simulator, numeric study, single-service table)
    /// with no sharded control plane to put on a wire. Binaries that
    /// cannot honor the flag call this right after [`Opts::parse`] so
    /// the request fails loudly instead of being silently ignored.
    ///
    /// # Panics
    /// Whenever `--transport` is anything but the default `inproc`.
    pub fn require_in_process(&self, bin: &str) {
        assert_eq!(
            self.transport,
            WireTransport::InProcess,
            "{bin} does not support --transport {:?}; wire transports apply to the \
             fluid-driver figures (fig5/6/7/12) and the service_tick bench",
            self.transport
        );
    }

    /// The shape shared by the figures' sharded comparison rows: the
    /// base (inner) engine — `--engine`, unwrapped if the caller already
    /// passed `--shards` — the shard count (`--shards`, default 2), and
    /// the exchange cadence of the exchanging row (`--exchange-every`,
    /// floored at 1 so that row always exchanges). Keeping fig12 and
    /// fig13 on this one helper keeps their row labels and defaults
    /// comparable.
    pub fn sharded_comparison(&self) -> (Engine, usize, u64) {
        let (base, shards) = match self.engine.clone() {
            Engine::Sharded { shards, inner } => (*inner, shards),
            engine => (engine, 2),
        };
        (base, shards, self.exchange_every.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Opts {
        Opts::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_quick_serial() {
        let o = parse(&[]);
        assert!(o.quick);
        assert_eq!(o.seed, 42);
        assert_eq!(o.engine, Engine::Serial);
    }

    #[test]
    fn full_and_seed() {
        let o = parse(&["--full", "--seed", "7"]);
        assert!(!o.quick);
        assert_eq!(o.seed, 7);
        assert_eq!(o.scaled(100, 10), 100);
        assert_eq!(parse(&["--quick"]).scaled(100, 10), 10);
    }

    #[test]
    fn engine_flags_parse() {
        assert_eq!(parse(&["--engine", "serial"]).engine, Engine::Serial);
        assert_eq!(parse(&["--engine", "fastpass"]).engine, Engine::Fastpass);
        assert_eq!(
            parse(&["--engine", "multicore"]).engine,
            Engine::Multicore { workers: 0 }
        );
        // --workers composes with multicore, in either flag order.
        assert_eq!(
            parse(&["--engine", "multicore", "--workers", "4"]).engine,
            Engine::Multicore { workers: 4 }
        );
        assert_eq!(
            parse(&["--workers", "2", "--engine", "multicore"]).engine,
            Engine::Multicore { workers: 2 }
        );
    }

    #[test]
    fn shards_compose_over_any_engine() {
        assert_eq!(
            parse(&["--engine", "gradient", "--shards", "4"]).engine,
            Engine::Gradient.sharded(4)
        );
        // Flag order doesn't matter, and --workers still reaches the
        // inner multicore engine.
        assert_eq!(
            parse(&["--shards", "2", "--engine", "multicore", "--workers", "3"]).engine,
            Engine::Multicore { workers: 3 }.sharded(2)
        );
        assert_eq!(parse(&["--shards", "1"]).engine, Engine::Serial.sharded(1));
    }

    #[test]
    fn exchange_every_reaches_the_config() {
        let o = parse(&["--shards", "2", "--exchange-every", "4"]);
        assert_eq!(o.exchange_every, 4);
        assert_eq!(o.config().exchange_every, 4);
        // Default is off, and everything else keeps the paper values.
        let d = parse(&[]);
        assert_eq!(d.exchange_every, 0);
        assert_eq!(d.config(), flowtune::FlowtuneConfig::default());
    }

    #[test]
    fn parallel_shards_and_delta_eps_reach_the_config() {
        // Default: flag absent leaves the config default (on).
        let d = parse(&[]);
        assert_eq!(d.parallel_shards, None);
        assert!(d.config().parallel_shards);
        assert_eq!(d.config().exchange_delta_eps, 0.0);
        // Bare flag and =on force the concurrent path.
        assert_eq!(parse(&["--parallel-shards"]).parallel_shards, Some(true));
        assert!(parse(&["--parallel-shards=on"]).config().parallel_shards);
        // =off forces the sequential fallback.
        let off = parse(&["--parallel-shards=off"]);
        assert_eq!(off.parallel_shards, Some(false));
        assert!(!off.config().parallel_shards);
        // The delta filter composes with the rest of the exchange flags.
        let o = parse(&[
            "--shards",
            "4",
            "--exchange-every",
            "1",
            "--exchange-delta-eps",
            "0.5",
        ]);
        assert_eq!(o.exchange_delta_eps, 0.5);
        assert_eq!(o.config().exchange_delta_eps, 0.5);
        assert_eq!(o.config().exchange_every, 1);
    }

    #[test]
    fn placement_and_affinity_reach_the_config() {
        let d = parse(&[]);
        assert_eq!(d.placement, PlacementSpec::Contiguous);
        assert_eq!(d.pair_affinity, 0.0);
        let o = parse(&["--placement", "traffic", "--pair-affinity", "0.8"]);
        assert_eq!(o.placement, PlacementSpec::Traffic { refine: false });
        assert_eq!(o.config().placement, o.placement);
        assert_eq!(o.pair_affinity, 0.8);
        assert_eq!(
            parse(&["--placement", "traffic:refine"]).config().placement,
            PlacementSpec::Traffic { refine: true }
        );
        assert_eq!(
            parse(&["--placement", "contiguous"]).config().placement,
            PlacementSpec::Contiguous
        );
    }

    /// The satellite audit: every [`FlowtuneConfig`] knob the CLI can set
    /// must (a) appear in the `--help` usage text under its flag name and
    /// (b) actually reach [`Opts::config`] when the flag is passed. A
    /// knob wired into `config()` without documentation — or documented
    /// without effect — fails here.
    #[test]
    fn every_config_knob_has_a_documented_flag() {
        // (config knob, flag, example invocation)
        let knobs: &[(&str, &str, &[&str])] = &[
            (
                "exchange_every",
                "--exchange-every",
                &["--exchange-every", "4"],
            ),
            (
                "exchange_delta_eps",
                "--exchange-delta-eps",
                &["--exchange-delta-eps", "0.5"],
            ),
            (
                "parallel_shards",
                "--parallel-shards",
                &["--parallel-shards=off"],
            ),
            ("placement", "--placement", &["--placement", "traffic"]),
            ("incremental", "--incremental", &["--incremental"]),
            (
                "full_sweep_every",
                "--full-sweep-every",
                &["--full-sweep-every", "16"],
            ),
            ("dirty_eps", "--dirty-eps", &["--dirty-eps", "0.5"]),
        ];
        let defaults = FlowtuneConfig::default();
        for (knob, flag, invocation) in knobs {
            assert!(
                USAGE.contains(flag),
                "knob `{knob}`: flag {flag} missing from USAGE"
            );
            assert!(
                USAGE.contains(knob),
                "knob `{knob}` not named in USAGE next to its flag"
            );
            let cfg = parse(invocation).config();
            assert_ne!(
                cfg, defaults,
                "knob `{knob}`: {invocation:?} did not change the config"
            );
        }
        // And the workload/composition flags that shape runs without
        // living in FlowtuneConfig are documented too.
        for flag in [
            "--engine",
            "--workers",
            "--shards",
            "--seed",
            "--quick",
            "--full",
            "--pair-affinity",
            "--transport",
            "--scenario",
            "--help",
        ] {
            assert!(USAGE.contains(flag), "{flag} missing from USAGE");
        }
    }

    #[test]
    fn scenario_parses_every_family_and_defaults_to_all() {
        use flowtune_workload::ScenarioKind;
        assert_eq!(parse(&[]).scenario, None);
        for kind in ScenarioKind::ALL {
            assert_eq!(
                parse(&["--scenario", kind.name()]).scenario,
                Some(kind),
                "{} must round-trip through --scenario",
                kind.name()
            );
        }
    }

    #[test]
    #[should_panic(expected = "unknown scenario `shuffle`")]
    fn bad_scenario_message_lists_valid_names() {
        let _ = parse(&["--scenario", "shuffle"]);
    }

    #[test]
    fn incremental_flags_reach_the_config() {
        // Flag absent: the config defaults stand (incremental off).
        let d = parse(&[]);
        assert_eq!(d.incremental, None);
        assert!(!d.config().incremental);
        assert_eq!(d.config().full_sweep_every, 64);
        assert_eq!(d.config().dirty_eps, 0.0);
        // Bare flag / =on / =off all parse.
        assert!(parse(&["--incremental"]).config().incremental);
        assert!(parse(&["--incremental=on"]).config().incremental);
        assert!(!parse(&["--incremental=off"]).config().incremental);
        // The cadence and eps compose with it.
        let o = parse(&[
            "--incremental",
            "--full-sweep-every",
            "16",
            "--dirty-eps",
            "1e-3",
        ]);
        let cfg = o.config();
        assert!(cfg.incremental);
        assert_eq!(cfg.full_sweep_every, 16);
        assert_eq!(cfg.dirty_eps, 1e-3);
    }

    #[test]
    #[should_panic(expected = "--dirty-eps needs a finite non-negative number")]
    fn negative_dirty_eps_panics() {
        let _ = parse(&["--dirty-eps", "-0.5"]);
    }

    #[test]
    fn transport_parses_and_defaults_to_in_process() {
        assert_eq!(parse(&[]).transport, WireTransport::InProcess);
        assert_eq!(
            parse(&["--transport", "inproc"]).transport,
            WireTransport::InProcess
        );
        assert_eq!(parse(&["--transport", "mem"]).transport, WireTransport::Mem);
        assert_eq!(parse(&["--transport", "uds"]).transport, WireTransport::Uds);
        assert_eq!(parse(&["--transport", "tcp"]).transport, WireTransport::Tcp);
        // The flag composes with sharding like the other wire knobs.
        let o = parse(&[
            "--shards",
            "2",
            "--exchange-every",
            "1",
            "--transport",
            "mem",
        ]);
        assert_eq!(o.engine, Engine::Serial.sharded(2));
        assert_eq!(o.transport, WireTransport::Mem);
    }

    #[test]
    fn wire_driver_builds_a_cluster_only_for_wire_transports() {
        use flowtune::TickDriver;
        use flowtune_topo::ClosConfig;
        let fabric = TwoTierClos::build(ClosConfig::multicore(2, 2, 4));
        assert!(parse(&["--shards", "2"]).wire_driver(&fabric).is_none());
        let opts = parse(&[
            "--shards",
            "2",
            "--exchange-every",
            "1",
            "--transport",
            "mem",
        ]);
        let mut driver = opts.wire_driver(&fabric).expect("mem wire builds");
        assert_eq!(driver.engine_name(), "peer-cluster");
        assert!(driver.tick().is_empty(), "no flows yet, no updates");
    }

    #[test]
    #[should_panic(expected = "valid transports: inproc, mem, uds, tcp")]
    fn bad_transport_message_lists_valid_names() {
        let _ = parse(&["--transport", "pigeon"]);
    }

    #[test]
    #[should_panic(expected = "serial engine per shard")]
    fn wire_transport_rejects_non_serial_engines() {
        use flowtune_topo::ClosConfig;
        let fabric = TwoTierClos::build(ClosConfig::multicore(2, 2, 4));
        let opts = parse(&[
            "--engine",
            "gradient",
            "--shards",
            "2",
            "--transport",
            "mem",
        ]);
        let _ = opts.wire_driver(&fabric);
    }

    #[test]
    #[should_panic(expected = "--placement traffic is in-process only")]
    fn wire_transport_rejects_traffic_placement() {
        use flowtune_topo::ClosConfig;
        let fabric = TwoTierClos::build(ClosConfig::multicore(2, 2, 4));
        let opts = parse(&[
            "--shards",
            "2",
            "--transport",
            "mem",
            "--placement",
            "traffic",
        ]);
        let _ = opts.wire_driver(&fabric);
    }

    #[test]
    #[should_panic(expected = "fig9_queueing does not support --transport")]
    fn require_in_process_rejects_wire_transports() {
        parse(&["--transport", "uds"]).require_in_process("fig9_queueing");
    }

    #[test]
    fn require_in_process_accepts_the_default() {
        parse(&[]).require_in_process("fig9_queueing");
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_delta_eps_panics() {
        let _ = parse(&["--exchange-delta-eps", "-1.0"]);
    }

    #[test]
    #[should_panic(expected = "probability in [0, 1]")]
    fn out_of_range_affinity_panics() {
        let _ = parse(&["--pair-affinity", "1.5"]);
    }

    #[test]
    #[should_panic(expected = "valid placements: contiguous, traffic, traffic:refine")]
    fn bad_placement_message_lists_valid_names() {
        let _ = parse(&["--placement", "quantum"]);
    }

    /// The satellite fix, pinned: a bad engine name's error now carries
    /// the full usage, so it names the composition flags (PR 4's
    /// `--parallel-shards` / `--exchange-delta-eps` and this PR's
    /// `--placement`), not just the engine list.
    #[test]
    #[should_panic(expected = "--parallel-shards")]
    fn bad_engine_message_names_the_composition_flags() {
        let _ = parse(&["--engine", "quantum"]);
    }

    #[test]
    #[should_panic(expected = "at least 1 shard")]
    fn zero_shards_panics() {
        let _ = parse(&["--shards", "0"]);
    }

    #[test]
    #[should_panic(expected = "unknown engine")]
    fn bad_engine_panics() {
        let _ = parse(&["--engine", "quantum"]);
    }

    #[test]
    #[should_panic(expected = "valid engines: serial, multicore, fastpass, gradient")]
    fn bad_engine_message_lists_valid_names() {
        let _ = parse(&["--engine", "quantum"]);
    }

    #[test]
    #[should_panic(expected = "only applies to --engine multicore")]
    fn workers_without_multicore_panics() {
        let _ = parse(&["--engine", "serial", "--workers", "2"]);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = parse(&["--wat"]);
    }
}
