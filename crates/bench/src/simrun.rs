//! Packet-simulation harness for the data-plane figures (4, 8, 9, 10,
//! 11): one "cell" = one (scheme, workload, load) simulation.

use flowtune::FlowtuneConfig;
use flowtune_sim::{Engine, Scheme, SimConfig, Simulation, MS};
use flowtune_topo::ClosConfig;
use flowtune_workload::{TraceConfig, TraceGenerator, Workload};

/// Parameters of one simulation cell.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Scheme under test.
    pub scheme: Scheme,
    /// Allocation engine for Flowtune cells (ignored by other schemes).
    pub engine: Engine,
    /// Flowtune control-plane settings (ignored by other schemes) —
    /// carries `--exchange-every` into sharded cells via
    /// [`Opts::config`](crate::Opts::config).
    pub flowtune: FlowtuneConfig,
    /// Flow-size distribution.
    pub workload: Workload,
    /// Average server load.
    pub load: f64,
    /// Servers (multiple of 16; racks of 16 as in the paper).
    pub servers: usize,
    /// Trace horizon, ps — flows arriving within it are simulated.
    pub horizon_ps: u64,
    /// Extra drain time after the horizon before measuring, ps.
    pub drain_ps: u64,
    /// Trace seed.
    pub seed: u64,
}

/// Summary of one cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Scheme name.
    pub scheme: &'static str,
    /// p99 slowdown per Figure-8 size bin, in bin order
    /// (1 / 1-10 / 10-100 / 100-1000 / large); `None` = empty bin.
    pub p99_by_bin: [Option<f64>; 5],
    /// p99 queueing delay on sampled 2-hop paths, µs.
    pub p99_qdelay_2hop_us: f64,
    /// p99 queueing delay on sampled 4-hop paths, µs.
    pub p99_qdelay_4hop_us: f64,
    /// Data dropped, Gbit/s over the horizon.
    pub drop_gbps: f64,
    /// Mean per-flow log₂(rate in Gbit/s) (Figure 11's score).
    pub fairness: f64,
    /// Completed / offered flows.
    pub completed: usize,
    /// Flows offered by the trace.
    pub offered: usize,
    /// Control wire bytes (Flowtune only) as fraction of capacity.
    pub ctrl_fraction: f64,
}

/// Figure-8 bin labels, in order.
pub const BINS: [&str; 5] = [
    "1 packet",
    "1-10 packets",
    "10-100 packets",
    "100-1000 packets",
    "large",
];

/// Runs one cell and summarizes it.
pub fn run_cell(spec: &CellSpec) -> CellResult {
    assert!(spec.servers.is_multiple_of(16));
    let clos = ClosConfig {
        racks: spec.servers / 16,
        servers_per_rack: 16,
        racks_per_block: spec.servers / 16,
        ..ClosConfig::paper_eval()
    };
    let mut cfg = SimConfig::paper(spec.scheme);
    cfg.clos = clos;
    cfg.engine = spec.engine.clone();
    cfg.flowtune = spec.flowtune;
    // Sample queues fast enough to see short runs.
    cfg.sample_interval_ps = (spec.horizon_ps / 200).clamp(100_000_000, MS);
    let mut sim = Simulation::new(cfg);

    let mut gen = TraceGenerator::new(TraceConfig {
        workload: spec.workload,
        load: spec.load,
        servers: spec.servers,
        server_link_bps: 10_000_000_000,
        seed: spec.seed,
        affinity: None,
    });
    let events = gen.events_until(spec.horizon_ps);
    let offered = events.len();
    for e in &events {
        sim.add_flow(e.at_ps, e.src as u16, e.dst as u16, e.bytes);
    }
    sim.run_until(spec.horizon_ps + spec.drain_ps);

    let m = sim.metrics();
    let mut p99_by_bin = [None; 5];
    for (i, bin) in BINS.iter().enumerate() {
        p99_by_bin[i] = m.p_slowdown(bin, 99.0);
    }
    let secs = (spec.horizon_ps + spec.drain_ps) as f64 / 1e12;
    let capacity = spec.servers as f64 * 1e10;
    CellResult {
        scheme: spec.scheme.name(),
        p99_by_bin,
        p99_qdelay_2hop_us: m.p_queue_delay(2, 99.0).unwrap_or(0) as f64 / 1e6,
        p99_qdelay_4hop_us: m.p_queue_delay(4, 99.0).unwrap_or(0) as f64 / 1e6,
        drop_gbps: m.drop_gbps(spec.horizon_ps + spec.drain_ps),
        fairness: m.fairness_score(),
        completed: m.fcts.len(),
        offered,
        ctrl_fraction: (m.ctrl_bytes_to_alloc + m.ctrl_bytes_from_alloc) as f64 * 8.0
            / secs
            / capacity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_cell_runs_for_flowtune_and_dctcp() {
        for scheme in [Scheme::Flowtune, Scheme::Dctcp] {
            let r = run_cell(&CellSpec {
                scheme,
                engine: Engine::Serial,
                flowtune: FlowtuneConfig::default(),
                workload: Workload::Web,
                load: 0.4,
                servers: 32,
                horizon_ps: 3 * MS,
                drain_ps: 10 * MS,
                seed: 5,
            });
            assert!(r.offered > 0);
            assert!(
                r.completed as f64 >= r.offered as f64 * 0.8,
                "{}: {}/{} completed",
                r.scheme,
                r.completed,
                r.offered
            );
        }
    }
}
