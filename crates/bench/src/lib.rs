//! Shared harness for the experiment binaries (one per paper table /
//! figure — see DESIGN.md §3 for the index) and the criterion
//! micro-benchmarks.
//!
//! Every binary accepts `--quick` (reduced scale, the default) and
//! `--full` (paper scale); `--seed N` overrides the trace seed. Output is
//! CSV-ish text with a header naming the paper artifact being reproduced,
//! so `cargo run --release -p flowtune-bench --bin fig5_update_traffic`
//! prints the same series Figure 5 plots.

#![forbid(unsafe_code)]

pub mod cli;
pub mod fluid;
pub mod num_churn;
pub mod simrun;

pub use cli::Opts;
pub use fluid::{overallocation_gbps, FluidDriver, FluidStats};
pub use simrun::{run_cell, CellResult, CellSpec};
