//! Figure 4: convergence to fair shares under flow churn.
//!
//! Five senders, one receiver; every 10 ms a flow starts, then every
//! 10 ms one stops. Prints each flow's throughput in 100 µs bins, per
//! scheme, as Figure 4 plots. Expected shapes: Flowtune snaps to 1/N
//! within tens of µs, DCTCP wobbles toward it over ms, pFabric starves
//! all but the shortest-remaining flow, sfqCoDel is fair but bursty, XCP
//! ramps slowly.

use flowtune_bench::Opts;
use flowtune_sim::{Scheme, SimConfig, Simulation, MS, US};
use flowtune_workload::ConvergenceScenario;

fn main() {
    let opts = Opts::parse();
    opts.require_in_process("fig4_convergence");
    let scen = ConvergenceScenario::paper_default();
    // Quick mode shrinks the stagger to 2 ms so the run is 20 ms.
    let stagger = opts.scaled(scen.stagger_ps, 2 * MS);
    let scen = ConvergenceScenario {
        stagger_ps: stagger,
        ..scen
    };
    let bin = 100 * US;
    println!(
        "# Figure 4 — per-flow throughput (Gbit/s), {} µs bins",
        bin / US
    );
    println!("scheme,time_ms,flow0,flow1,flow2,flow3,flow4");
    for scheme in Scheme::ALL {
        let mut cfg = SimConfig::paper(scheme);
        cfg.engine = opts.engine.clone();
        cfg.throughput_bin_ps = bin;
        let mut sim = Simulation::new(cfg);
        let mut ids = Vec::new();
        for (k, &(start, stop)) in scen.schedule().iter().enumerate() {
            let src = scen.senders[k] as u16;
            ids.push(sim.add_open_flow(start, stop, src, scen.receiver as u16));
        }
        sim.run_until(scen.duration_ps() + 5 * MS);
        let m = sim.metrics();
        let bins = (scen.duration_ps() / bin) as usize;
        for b in 0..bins {
            let mut row = format!("{},{:.2}", scheme.name(), (b as u64 * bin) as f64 / 1e9);
            for id in &ids {
                let bytes = m
                    .throughput_bins
                    .get(id)
                    .and_then(|s| s.get(b))
                    .copied()
                    .unwrap_or(0);
                let gbps = bytes as f64 * 8.0 / (bin as f64 / 1e12) / 1e9;
                row.push_str(&format!(",{gbps:.3}"));
            }
            println!("{row}");
        }
    }
}
