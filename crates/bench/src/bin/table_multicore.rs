//! §6.1 table: multicore allocator latency vs cores, nodes and flows.
//!
//! Reproduces the row structure exactly (rows 1–3: more cores; 3–5: more
//! flows; 5–7: more nodes). "Cycles" are derived from wall time at the
//! nominal 2.4 GHz of the paper's E7-8870s so the two reports are directly
//! comparable; absolute values differ with host hardware, the scaling
//! shape is the claim (see EXPERIMENTS.md).

use std::time::Duration;

use flowtune_alloc::{AllocConfig, MulticoreAllocator};
use flowtune_bench::Opts;
use flowtune_topo::{ClosConfig, FlowId, TwoTierClos};

struct Row {
    blocks: usize,
    racks_per_block: usize,
    flows: usize,
}

fn run_row(row: &Row, iters: usize, seed: u64) -> (usize, usize, Duration) {
    let servers_per_rack = 48; // Jupiter-like racks, as in DESIGN.md
    let cfg = ClosConfig::multicore(row.blocks, row.racks_per_block, servers_per_rack);
    let fabric = TwoTierClos::build(cfg);
    let servers = fabric.config().server_count();
    let mut alloc = MulticoreAllocator::new(&fabric, AllocConfig::default());
    for f in 0..row.flows {
        let id = FlowId(f as u64);
        let src = (f.wrapping_mul(7919).wrapping_add(seed as usize)) % servers;
        let mut dst = (f.wrapping_mul(104_729).wrapping_add(13)) % servers;
        if dst == src {
            dst = (dst + 1) % servers;
        }
        let path = fabric.path(src, dst, id);
        alloc.add_flow(id, src, dst, 1.0, &path);
    }
    // Warm up caches/threads, then measure.
    alloc.run_iterations(iters / 10 + 1);
    let took = alloc.run_iterations(iters);
    (row.blocks * row.blocks, servers, took / iters as u32)
}

fn main() {
    let opts = Opts::parse();
    opts.require_in_process("table_multicore");
    let iters = opts.scaled(1000, 100) as usize;
    // The paper's seven rows: (blocks → cores = B², racks/block, flows).
    let rows = [
        Row {
            blocks: 2,
            racks_per_block: 4,
            flows: 3072,
        },
        Row {
            blocks: 4,
            racks_per_block: 4,
            flows: 6144,
        },
        Row {
            blocks: 8,
            racks_per_block: 4,
            flows: 12288,
        },
        Row {
            blocks: 8,
            racks_per_block: 4,
            flows: 24576,
        },
        Row {
            blocks: 8,
            racks_per_block: 4,
            flows: 49152,
        },
        Row {
            blocks: 8,
            racks_per_block: 8,
            flows: 49152,
        },
        Row {
            blocks: 8,
            racks_per_block: 12,
            flows: 49152,
        },
    ];
    println!(
        "# §6.1 table — multicore allocator latency ({} iterations/row)",
        iters
    );
    println!("# paper rows: 8.29 / 8.86 / 12.63 / 13.99 / 16.93 / 23.76 / 30.71 µs");
    println!("cores,nodes,flows,cycles@2.4GHz,time_us,alloc_tbps_40g");
    for row in &rows {
        let (cores, nodes, per_iter) = run_row(row, iters, opts.seed);
        let us = per_iter.as_secs_f64() * 1e6;
        let cycles = per_iter.as_secs_f64() * 2.4e9;
        // §6.1: allocated throughput = nodes × 40 Gbit/s line rate.
        let tbps = nodes as f64 * 40e9 / 1e12;
        println!(
            "{cores},{nodes},{},{cycles:.1},{us:.2},{tbps:.2}",
            row.flows
        );
    }
}
