//! Figure 13: U-NORM vs F-NORM throughput as a fraction of the optimal
//! allocation, for NED and Gradient under churn.
//!
//! Paper result (J): "F-NORM achieves over 99.7% of optimal throughput
//! with NED (98.4% with Gradient). In contrast, U-NORM scales flow
//! throughput too aggressively ... NED with F-NORM allocations
//! occasionally slightly exceed the optimal" (more throughput at slightly
//! worse fairness — never above link capacity).

use flowtune::{AllocatorService, TickDriver};
use flowtune_bench::num_churn::NumChurn;
use flowtune_bench::Opts;
use flowtune_num::normalize::{f_norm, total_throughput, u_norm};
use flowtune_num::{solve, Gradient, Ned, Optimizer, SolverState};
use flowtune_proto::{Message, Token};
use flowtune_topo::{ClosConfig, TwoTierClos};
use flowtune_workload::Workload;

fn main() {
    let opts = Opts::parse();
    opts.require_in_process("fig13_norm");
    let ticks = opts.scaled(20_000, 3_000) as usize;
    let warmup = ticks / 5;
    let sample_every = 10;
    let loads: &[f64] = if opts.quick {
        &[0.25, 0.5, 0.75]
    } else {
        &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    };
    println!("# Figure 13 — normalized throughput as fraction of the converged optimum");
    println!("algorithm,load,f_norm_fraction,u_norm_fraction");
    type AlgoFactory = Box<dyn Fn() -> Box<dyn Optimizer>>;
    let algos: Vec<(&str, AlgoFactory)> = vec![
        ("NED", Box::new(|| Box::new(Ned::new(0.4)))),
        (
            "Gradient",
            Box::new(|| Box::new(Gradient::stable_for(10.0, 4.0, 1.0))),
        ),
    ];
    for (name, mk) in &algos {
        for &load in loads {
            let mut churn = NumChurn::new(Workload::Web, load, opts.seed);
            let mut opt = mk();
            let mut state = SolverState::new(&churn.problem);
            // The "oracle": a separate NED instance run to convergence on
            // the same flow set (§6.6: "we ran a separate instance of NED
            // until it converged to the optimal allocation").
            let mut oracle_state = SolverState::new(&churn.problem);
            let (mut f_sum, mut u_sum, mut n) = (0.0, 0.0, 0u64);
            for i in 0..ticks {
                churn.advance(opt.as_mut(), &mut state);
                if i >= warmup && i % sample_every == 0 {
                    let problem = &churn.problem;
                    let mut oracle = Ned::new(1.0);
                    oracle_state.fit(problem);
                    solve(&mut oracle, problem, &mut oracle_state, 5_000, 1e-7);
                    let optimal = total_throughput(problem, &oracle_state.rates);
                    if optimal <= 0.0 {
                        continue;
                    }
                    let f = total_throughput(problem, &f_norm(problem, &state.rates));
                    let u = total_throughput(problem, &u_norm(problem, &state.rates));
                    f_sum += f / optimal;
                    u_sum += u / optimal;
                    n += 1;
                }
            }
            if n > 0 {
                println!(
                    "{name},{load},{:.4},{:.4}",
                    f_sum / n as f64,
                    u_sum / n as f64
                );
            }
        }
    }
    sharded_incast_panel(&opts);
}

/// Companion panel, through the service path: on a cross-shard incast,
/// per-shard F-NORM alone keeps each *shard* feasible but not the sum —
/// the "papers-over" failure mode the inter-shard link-state exchange
/// (`--shards N --exchange-every K`) removes. Reports F-NORMed throughput
/// as a fraction of the unsharded service's, and the worst link
/// over-subscription of the endpoint-visible rates.
fn sharded_incast_panel(opts: &Opts) {
    // `--engine` picks the (inner) engine of every row; `--shards N`
    // the partition width of the sharded rows. Same row shape as fig12.
    let (base, shards, cadence) = opts.sharded_comparison();
    // Two blocks of 2 racks × 8 servers; sources spread over both blocks,
    // one receiver: the downlink is a cross-shard bottleneck.
    let fabric = TwoTierClos::build(ClosConfig::multicore(2, 2, 8));
    let servers = fabric.config().server_count() as u16;
    let receiver = servers - 1;
    let sources: Vec<u16> = (0..servers - 1).step_by(2).collect();
    let drive = |svc: &mut dyn TickDriver| -> (f64, f64) {
        for (i, &src) in sources.iter().enumerate() {
            let spine = fabric.ecmp_spine(
                src as usize,
                receiver as usize,
                flowtune_topo::FlowId(i as u64),
            );
            svc.on_message(Message::FlowletStart {
                token: Token::new(i as u32 + 1),
                src,
                dst: receiver,
                size_hint: 1_000_000,
                weight_q8: 256,
                spine: spine as u8,
            })
            .expect("unique tokens");
        }
        for _ in 0..600 {
            svc.tick();
        }
        let mut loads = vec![0.0; fabric.topology().link_count()];
        let mut throughput = 0.0;
        for (i, &src) in sources.iter().enumerate() {
            let rate = svc.flow_rate_gbps(Token::new(i as u32 + 1)).unwrap();
            throughput += rate;
            let spine = fabric.ecmp_spine(
                src as usize,
                receiver as usize,
                flowtune_topo::FlowId(i as u64),
            );
            for link in fabric
                .path_via_spine(src as usize, receiver as usize, spine)
                .iter()
            {
                loads[link.index()] += rate;
            }
        }
        let over = fabric
            .topology()
            .links()
            .iter()
            .zip(&loads)
            .map(|(link, &load)| load / (link.capacity_bps as f64 / 1e9) - 1.0)
            .fold(0.0f64, f64::max);
        (throughput, over)
    };
    let mut unsharded = AllocatorService::builder()
        .fabric(&fabric)
        .config(opts.config())
        .engine(base.clone())
        .build_driver()
        .expect("fabric is set and the engine is unsharded");
    let (optimal, _) = drive(unsharded.as_mut());
    println!("# Figure 13 panel — cross-shard incast via the service path (F-NORM on)");
    println!("configuration,throughput_fraction_of_unsharded,worst_link_oversubscription");
    for (label, exchange_every) in [
        (format!("{}-sharded{shards}-noexchange", base.name()), 0),
        (
            format!("{}-sharded{shards}-x{cadence}", base.name()),
            cadence,
        ),
    ] {
        let cfg = flowtune::FlowtuneConfig {
            exchange_every,
            ..opts.config()
        };
        let mut svc = AllocatorService::builder()
            .fabric(&fabric)
            .config(cfg)
            .engine(base.clone().sharded(shards))
            .build_driver()
            .expect("fabric is set and shards do not nest");
        let (throughput, over) = drive(svc.as_mut());
        println!("{label},{:.4},{:.4}", throughput / optimal, over.max(0.0));
    }
}
