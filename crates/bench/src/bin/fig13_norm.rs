//! Figure 13: U-NORM vs F-NORM throughput as a fraction of the optimal
//! allocation, for NED and Gradient under churn.
//!
//! Paper result (J): "F-NORM achieves over 99.7% of optimal throughput
//! with NED (98.4% with Gradient). In contrast, U-NORM scales flow
//! throughput too aggressively ... NED with F-NORM allocations
//! occasionally slightly exceed the optimal" (more throughput at slightly
//! worse fairness — never above link capacity).

use flowtune_bench::num_churn::NumChurn;
use flowtune_bench::Opts;
use flowtune_num::normalize::{f_norm, total_throughput, u_norm};
use flowtune_num::{solve, Gradient, Ned, Optimizer, SolverState};
use flowtune_workload::Workload;

fn main() {
    let opts = Opts::parse();
    let ticks = opts.scaled(20_000, 3_000) as usize;
    let warmup = ticks / 5;
    let sample_every = 10;
    let loads: &[f64] = if opts.quick {
        &[0.25, 0.5, 0.75]
    } else {
        &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    };
    println!("# Figure 13 — normalized throughput as fraction of the converged optimum");
    println!("algorithm,load,f_norm_fraction,u_norm_fraction");
    type AlgoFactory = Box<dyn Fn() -> Box<dyn Optimizer>>;
    let algos: Vec<(&str, AlgoFactory)> = vec![
        ("NED", Box::new(|| Box::new(Ned::new(0.4)))),
        (
            "Gradient",
            Box::new(|| Box::new(Gradient::stable_for(10.0, 4.0, 1.0))),
        ),
    ];
    for (name, mk) in &algos {
        for &load in loads {
            let mut churn = NumChurn::new(Workload::Web, load, opts.seed);
            let mut opt = mk();
            let mut state = SolverState::new(&churn.problem);
            // The "oracle": a separate NED instance run to convergence on
            // the same flow set (§6.6: "we ran a separate instance of NED
            // until it converged to the optimal allocation").
            let mut oracle_state = SolverState::new(&churn.problem);
            let (mut f_sum, mut u_sum, mut n) = (0.0, 0.0, 0u64);
            for i in 0..ticks {
                churn.advance(opt.as_mut(), &mut state);
                if i >= warmup && i % sample_every == 0 {
                    let problem = &churn.problem;
                    let mut oracle = Ned::new(1.0);
                    oracle_state.fit(problem);
                    solve(&mut oracle, problem, &mut oracle_state, 5_000, 1e-7);
                    let optimal = total_throughput(problem, &oracle_state.rates);
                    if optimal <= 0.0 {
                        continue;
                    }
                    let f = total_throughput(problem, &f_norm(problem, &state.rates));
                    let u = total_throughput(problem, &u_norm(problem, &state.rates));
                    f_sum += f / optimal;
                    u_sum += u / optimal;
                    n += 1;
                }
            }
            if n > 0 {
                println!(
                    "{name},{load},{:.4},{:.4}",
                    f_sum / n as f64,
                    u_sum / n as f64
                );
            }
        }
    }
}
