//! Figure 6: reduction in allocator→server update traffic when raising
//! the notification threshold from 0.01 to 0.02–0.05.
//!
//! Paper result (D): thresholds of 0.05 save "up to 69%, 64% and 33% of
//! update traffic for the Hadoop, Cache, and Web workloads".

use flowtune::FlowtuneConfig;
use flowtune_bench::{FluidDriver, Opts};
use flowtune_workload::Workload;

fn main() {
    let opts = Opts::parse();
    let servers = opts.scaled(144, 48) as usize;
    let warmup = opts.scaled(20_000_000_000, 5_000_000_000);
    let window = opts.scaled(100_000_000_000, 20_000_000_000);
    let thresholds = [0.01, 0.02, 0.03, 0.04, 0.05];
    println!("# Figure 6 — % reduction in update traffic vs the 0.01 threshold");
    println!("workload,load,threshold,from_alloc_bytes,reduction_pct");
    for workload in Workload::ALL {
        for load in [0.2, 0.4, 0.6, 0.8] {
            let mut base = 0u64;
            for &t in &thresholds {
                let cfg = FlowtuneConfig {
                    update_threshold: t,
                    ..FlowtuneConfig::default()
                };
                let mut d = FluidDriver::with_transport(
                    workload,
                    load,
                    0.0,
                    servers,
                    cfg,
                    opts.seed,
                    opts.engine.clone(),
                    opts.transport,
                );
                let stats = d.run(warmup, window);
                if t == 0.01 {
                    base = stats.wire_from_alloc;
                }
                let reduction = if base > 0 {
                    100.0 * (1.0 - stats.wire_from_alloc as f64 / base as f64)
                } else {
                    0.0
                };
                println!(
                    "{},{load},{t},{},{reduction:.1}",
                    workload.name(),
                    stats.wire_from_alloc
                );
            }
        }
    }
}
