//! Figure 7: update traffic vs network size.
//!
//! Paper result (E): "as the network grows from 128 servers up to 2048
//! servers, update traffic takes the same fraction of network capacity —
//! there is no debilitating cascading of updates".

use flowtune_bench::{FluidDriver, Opts};
use flowtune_workload::Workload;

fn main() {
    let opts = Opts::parse();
    let sizes: &[usize] = if opts.quick {
        &[128, 256, 512]
    } else {
        &[128, 256, 512, 1024, 2048]
    };
    let warmup = opts.scaled(10_000_000_000, 3_000_000_000);
    let window = opts.scaled(50_000_000_000, 10_000_000_000);
    println!("# Figure 7 — update-traffic capacity fraction vs network size (web workload)");
    println!("servers,load,from_alloc_fraction");
    for &servers in sizes {
        for load in [0.4, 0.6, 0.8] {
            // `opts.config()` carries `--exchange-every` into sharded
            // runs, so this figure also covers exchange-enabled scaling.
            let mut d = FluidDriver::with_transport(
                Workload::Web,
                load,
                0.0,
                servers,
                opts.config(),
                opts.seed,
                opts.engine.clone(),
                opts.transport,
            );
            let stats = d.run(warmup, window);
            println!(
                "{servers},{load},{:.6}",
                stats.from_alloc_fraction(servers, 10_000_000_000)
            );
        }
    }
}
