//! Figure 8: improvement ("speedup") in 99th-percentile normalized flow
//! completion time from switching each scheme to Flowtune, per flow-size
//! bin and load.
//!
//! Paper result (F): 8.6×–10.9× vs DCTCP on 1-packet flows, 1.7×–2.4× vs
//! pFabric, 3.5×–3.8× vs sfqCoDel on 10–100-packet flows, etc.

use flowtune_bench::simrun::BINS;
use flowtune_bench::{run_cell, CellSpec, Opts};
use flowtune_sim::{Scheme, MS};
use flowtune_workload::Workload;

fn main() {
    let opts = Opts::parse();
    opts.require_in_process("fig8_p99_fct");
    let servers = opts.scaled(144, 48) as usize;
    let horizon = opts.scaled(60 * MS, 8 * MS);
    let drain = opts.scaled(60 * MS, 40 * MS);
    let loads: &[f64] = if opts.quick {
        &[0.4, 0.8]
    } else {
        &[0.2, 0.4, 0.6, 0.8]
    };
    println!("# Figure 8 — p99 FCT slowdown per bin, and speedup of Flowtune over each scheme");
    println!("load,scheme,bin,p99_slowdown,flowtune_speedup");
    for &load in loads {
        let spec = |scheme| CellSpec {
            scheme,
            engine: opts.engine.clone(),
            flowtune: opts.config(),
            workload: Workload::Web,
            load,
            servers,
            horizon_ps: horizon,
            drain_ps: drain,
            seed: opts.seed,
        };
        let ft = run_cell(&spec(Scheme::Flowtune));
        for scheme in [
            Scheme::Dctcp,
            Scheme::Pfabric,
            Scheme::SfqCodel,
            Scheme::Xcp,
        ] {
            let other = run_cell(&spec(scheme));
            for (i, bin) in BINS.iter().enumerate() {
                if let (Some(f), Some(o)) = (ft.p99_by_bin[i], other.p99_by_bin[i]) {
                    println!("{load},{},{bin},{o:.2},{:.2}", other.scheme, o / f);
                }
            }
        }
        for (i, bin) in BINS.iter().enumerate() {
            if let Some(f) = ft.p99_by_bin[i] {
                println!("{load},Flowtune,{bin},{f:.2},1.00");
            }
        }
    }
}
