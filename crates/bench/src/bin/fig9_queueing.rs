//! Figure 9: p99 queueing delay on 2-hop and 4-hop paths vs load, for
//! the schemes with FIFO queues (Flowtune, DCTCP, XCP — pFabric/sfqCoDel
//! are excluded exactly as in the paper because their queues are not
//! FIFO, so sampled lengths don't give path delay).
//!
//! Paper result (G): Flowtune keeps p99 under 8.9 µs; at 0.8 load DCTCP
//! is 12× higher and XCP 3.5×.

use flowtune_bench::{run_cell, CellSpec, Opts};
use flowtune_sim::{Scheme, MS};
use flowtune_workload::Workload;

fn main() {
    let opts = Opts::parse();
    opts.require_in_process("fig9_queueing");
    let servers = opts.scaled(144, 48) as usize;
    let horizon = opts.scaled(60 * MS, 8 * MS);
    let drain = opts.scaled(40 * MS, 30 * MS);
    let loads: &[f64] = if opts.quick {
        &[0.4, 0.8]
    } else {
        &[0.2, 0.4, 0.6, 0.8]
    };
    println!("# Figure 9 — p99 queueing delay (µs) on sampled 2-hop / 4-hop paths");
    println!("load,scheme,p99_2hop_us,p99_4hop_us");
    for &load in loads {
        for scheme in [Scheme::Flowtune, Scheme::Dctcp, Scheme::Xcp] {
            let r = run_cell(&CellSpec {
                scheme,
                engine: opts.engine.clone(),
                flowtune: opts.config(),
                workload: Workload::Web,
                load,
                servers,
                horizon_ps: horizon,
                drain_ps: drain,
                seed: opts.seed,
            });
            println!(
                "{load},{},{:.2},{:.2}",
                r.scheme, r.p99_qdelay_2hop_us, r.p99_qdelay_4hop_us
            );
        }
    }
}
