//! Figure 12: total over-capacity allocation without normalization,
//! per engine, vs load — measured **through the service path**
//! (`ServiceBuilder` → `AllocatorService` / `ShardedService`) rather than
//! raw optimizers, so what is charged is exactly what the control plane
//! would hand endpoints with F-NORM disabled.
//!
//! Paper result (I): "Normalization is important; without it, NED
//! over-allocates links by up to 140 Gbits/s. NED over-allocates more
//! than Gradient because it is more aggressive." On top of the paper's
//! comparison, the sharded rows quantify the cross-shard pricing gap this
//! repo's link-state exchange closes: without the exchange each shard
//! prices shared links for its own flows alone (persistent
//! over-allocation on cross-shard hot links), with `--exchange-every K`
//! the shards price true totals and the row drops back to the unsharded
//! NED's transient-only over-allocation.
//!
//! Flags: `--engine` picks the base engine of the sharded rows' inner
//! services, `--shards N` their shard count (default 2), and
//! `--exchange-every K` the exchange cadence of the exchanging row
//! (default 1).

use flowtune::{Engine, FlowtuneConfig};
use flowtune_bench::{overallocation_gbps, FluidDriver, Opts};
use flowtune_workload::Workload;

fn main() {
    let opts = Opts::parse();
    let warmup = opts.scaled(5_000_000_000, 1_000_000_000);
    let window = opts.scaled(50_000_000_000, 5_000_000_000);
    let servers = if opts.quick { 32 } else { 144 };
    let loads: &[f64] = if opts.quick {
        &[0.25, 0.5, 0.75]
    } else {
        &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    };
    // The sharded rows shard the *base* engine; same row shape as
    // fig13's sharded panel.
    let (base, shards, cadence) = opts.sharded_comparison();
    let rows: Vec<(String, Engine, u64)> = vec![
        ("NED".into(), Engine::Serial, 0),
        ("Gradient".into(), Engine::Gradient, 0),
        (
            format!("{}-sharded{shards}-noexchange", base.name()),
            base.clone().sharded(shards),
            0,
        ),
        (
            format!("{}-sharded{shards}-x{cadence}", base.name()),
            base.sharded(shards),
            cadence,
        ),
    ];
    println!(
        "# Figure 12 — mean over-capacity allocation (Gbit/s) without normalization, service path"
    );
    println!("engine,load,mean_overallocation_gbps,p99_overallocation_gbps");
    for (label, engine, exchange_every) in &rows {
        for &load in loads {
            let cfg = FlowtuneConfig {
                f_norm: false,
                exchange_every: *exchange_every,
                ..FlowtuneConfig::default()
            };
            let mut driver = FluidDriver::with_engine(
                Workload::Web,
                load,
                servers,
                cfg,
                opts.seed,
                engine.clone(),
            );
            let mut samples = Vec::new();
            driver.run_sampled(warmup, window, &mut |drv| {
                samples.push(overallocation_gbps(drv));
            });
            let mean = samples.iter().sum::<f64>() / samples.len().max(1) as f64;
            let p99 = flowtune_sim::metrics::percentile(&mut samples, 99.0).unwrap_or(0.0);
            println!("{label},{load},{mean:.2},{p99:.2}");
        }
    }
}
