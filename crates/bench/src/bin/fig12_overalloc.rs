//! Figure 12: total over-capacity allocation without normalization,
//! per engine, vs load — measured **through the service path**
//! (`ServiceBuilder` → `AllocatorService` / `ShardedService`) rather than
//! raw optimizers, so what is charged is exactly what the control plane
//! would hand endpoints with F-NORM disabled.
//!
//! Paper result (I): "Normalization is important; without it, NED
//! over-allocates links by up to 140 Gbits/s. NED over-allocates more
//! than Gradient because it is more aggressive." On top of the paper's
//! comparison, the sharded rows quantify the cross-shard pricing gap this
//! repo's link-state exchange closes: without the exchange each shard
//! prices shared links for its own flows alone (persistent
//! over-allocation on cross-shard hot links), with `--exchange-every K`
//! the shards price true totals and the row drops back to the unsharded
//! NED's transient-only over-allocation. The `exchange_bytes` column
//! prices that correction: the exchange's cumulative wire cost over the
//! whole run (warmup included — identical across rows, so rows compare).
//!
//! Passing `--placement traffic[:refine]` adds a placed twin of the
//! exchanging sharded row: same engine, same cadence, but endpoints
//! partitioned by the workload's sampled traffic matrix instead of
//! contiguous ranges. To quantify the placement win, run it on a
//! rack-affine workload with a realistic delta filter —
//!
//! ```text
//! fig12_overalloc --quick --shards 2 --exchange-every 1 \
//!     --placement traffic --pair-affinity 0.8 --exchange-delta-eps 0.001
//! ```
//!
//! — the placed row then ships markedly fewer exchange bytes at the same
//! (non-)over-allocation: communicating racks share a shard, so fewer
//! links are priced from two sides. (With the default `eps = 0` every
//! float wiggle of every loaded link re-ships each round, identically
//! under any placement, and the comparison drowns.)
//!
//! Flags: `--engine` picks the base engine of the sharded rows' inner
//! services, `--shards N` their shard count (default 2),
//! `--exchange-every K` the exchange cadence of the exchanging rows
//! (default 1), `--placement P` the placed row's placement and
//! `--pair-affinity F` the workload's rack-affine skew.

use flowtune::{Engine, FlowtuneConfig, PlacementSpec};
use flowtune_bench::cli::WireTransport;
use flowtune_bench::{overallocation_gbps, FluidDriver, Opts};
use flowtune_workload::Workload;

fn main() {
    let opts = Opts::parse();
    let warmup = opts.scaled(5_000_000_000, 1_000_000_000);
    let window = opts.scaled(50_000_000_000, 5_000_000_000);
    // Quick mode runs 4 racks (not fig7's 2) so the sharded/placement
    // rows have a real rack topology to partition: with only 2 racks a
    // 2-shard placement has one rack per shard whatever the matrix says.
    let servers = if opts.quick { 64 } else { 144 };
    let loads: &[f64] = if opts.quick {
        &[0.25, 0.5, 0.75]
    } else {
        &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    };
    // The sharded rows shard the *base* engine; same row shape as
    // fig13's sharded panel.
    let (base, shards, cadence) = opts.sharded_comparison();
    let mut rows: Vec<(String, Engine, u64, PlacementSpec)> = vec![
        ("NED".into(), Engine::Serial, 0, PlacementSpec::Contiguous),
        (
            "Gradient".into(),
            Engine::Gradient,
            0,
            PlacementSpec::Contiguous,
        ),
        (
            format!("{}-sharded{shards}-noexchange", base.name()),
            base.clone().sharded(shards),
            0,
            PlacementSpec::Contiguous,
        ),
        (
            format!("{}-sharded{shards}-x{cadence}", base.name()),
            base.clone().sharded(shards),
            cadence,
            PlacementSpec::Contiguous,
        ),
    ];
    if opts.placement != PlacementSpec::Contiguous {
        rows.push((
            format!(
                "{}-sharded{shards}-x{cadence}-{}",
                base.name(),
                opts.placement.name()
            ),
            base.sharded(shards),
            cadence,
            opts.placement,
        ));
    }
    println!(
        "# Figure 12 — mean over-capacity allocation (Gbit/s) without normalization, service path"
    );
    println!("engine,load,mean_overallocation_gbps,p99_overallocation_gbps,exchange_bytes");
    for (label, engine, exchange_every, placement) in &rows {
        for &load in loads {
            // Base on the parsed options so `--exchange-delta-eps` and
            // `--parallel-shards` reach the rows too; each row then pins
            // its own cadence and placement.
            let cfg = FlowtuneConfig {
                f_norm: false,
                exchange_every: *exchange_every,
                placement: *placement,
                ..opts.config()
            };
            // `--transport` puts the sharded rows on the wire; the
            // unsharded baselines and the traffic-placement row have no
            // wire equivalent and stay in-process (output is bit-for-bit
            // identical either way, so the rows remain comparable).
            let wire = match (engine, placement) {
                (Engine::Sharded { inner, .. }, PlacementSpec::Contiguous)
                    if **inner == Engine::Serial =>
                {
                    opts.transport
                }
                _ => WireTransport::InProcess,
            };
            let mut driver = FluidDriver::with_transport(
                Workload::Web,
                load,
                opts.pair_affinity,
                servers,
                cfg,
                opts.seed,
                engine.clone(),
                wire,
            );
            let mut samples = Vec::new();
            driver.run_sampled(warmup, window, &mut |drv| {
                samples.push(overallocation_gbps(drv));
            });
            let mean = samples.iter().sum::<f64>() / samples.len().max(1) as f64;
            let p99 = flowtune_sim::metrics::percentile(&mut samples, 99.0).unwrap_or(0.0);
            let bytes = driver.control_stats().exchange_bytes;
            println!("{label},{load},{mean:.2},{p99:.2},{bytes}");
        }
    }
}
