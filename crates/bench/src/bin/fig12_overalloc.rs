//! Figure 12: total over-capacity allocation without normalization,
//! per optimizer, vs load.
//!
//! Paper result (I): "Normalization is important; without it, NED
//! over-allocates links by up to 140 Gbits/s. NED over-allocates more
//! than Gradient because it is more aggressive ... FGM does not handle
//! the stream of updates well, and its allocations become unrealistic at
//! even moderate loads."

use flowtune_bench::num_churn::NumChurn;
use flowtune_bench::Opts;
use flowtune_num::{Fgm, Gradient, GradientRt, Ned, NedRt, Optimizer, SolverState};
use flowtune_workload::Workload;

fn main() {
    let opts = Opts::parse();
    let ticks = opts.scaled(20_000, 3_000) as usize; // 200 / 30 ms at 10 µs
    let warmup = ticks / 5;
    let loads: &[f64] = if opts.quick {
        &[0.25, 0.5, 0.75]
    } else {
        &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    };
    println!("# Figure 12 — mean over-capacity allocation (Gbit/s) without normalization");
    println!("algorithm,load,mean_overallocation_gbps,p99_overallocation_gbps");
    type AlgoFactory = Box<dyn Fn() -> Box<dyn Optimizer>>;
    let algos: Vec<(&str, AlgoFactory)> = vec![
        ("NED", Box::new(|| Box::new(Ned::new(0.4)))),
        ("NED-RT", Box::new(|| Box::new(NedRt::new(0.4)))),
        // Gradient step sized for ~10 G capacities, per §6.6's reference
        // implementations.
        (
            "Gradient",
            Box::new(|| Box::new(Gradient::stable_for(10.0, 4.0, 1.0))),
        ),
        ("Gradient-RT", Box::new(|| Box::new(GradientRt::new(0.02)))),
        ("FGM", Box::new(|| Box::new(Fgm::new()))),
    ];
    for (name, mk) in &algos {
        for &load in loads {
            let mut churn = NumChurn::new(Workload::Web, load, opts.seed);
            let mut opt = mk();
            let mut state = SolverState::new(&churn.problem);
            let mut samples = Vec::with_capacity(ticks - warmup);
            for i in 0..ticks {
                let t = churn.advance(opt.as_mut(), &mut state);
                if i >= warmup {
                    samples.push(t.overallocation_gbps);
                }
            }
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            let p99 = flowtune_sim::metrics::percentile(&mut samples, 99.0).unwrap_or(0.0);
            println!("{name},{load},{mean:.2},{p99:.2}");
        }
    }
}
