//! Figure 5: allocator update traffic as a fraction of network capacity,
//! per workload and load, at the 0.01 threshold.
//!
//! Paper result (C): "< 0.17%, 0.57%, and 1.13% of network capacity for
//! the Hadoop, cache, and web workloads"; traffic *to* the allocator is
//! substantially lower than *from* it.

use flowtune::FlowtuneConfig;
use flowtune_bench::{FluidDriver, Opts};
use flowtune_workload::Workload;

fn main() {
    let opts = Opts::parse();
    let servers = opts.scaled(144, 48) as usize;
    let warmup = opts.scaled(20_000_000_000, 5_000_000_000); // 20 / 5 ms
    let window = opts.scaled(100_000_000_000, 20_000_000_000); // 100 / 20 ms
    println!("# Figure 5 — allocator traffic as fraction of network capacity (threshold 0.01)");
    println!("workload,load,from_alloc_fraction,to_alloc_fraction,flowlets_per_s,updates_per_s");
    for workload in Workload::ALL {
        for load in [0.2, 0.4, 0.6, 0.8] {
            let mut d = FluidDriver::with_transport(
                workload,
                load,
                0.0,
                servers,
                FlowtuneConfig::default(),
                opts.seed,
                opts.engine.clone(),
                opts.transport,
            );
            let stats = d.run(warmup, window);
            let secs = window as f64 / 1e12;
            println!(
                "{},{load},{:.6},{:.6},{:.0},{:.0}",
                workload.name(),
                stats.from_alloc_fraction(servers, 10_000_000_000),
                stats.to_alloc_fraction(servers, 10_000_000_000),
                stats.flowlets as f64 / secs,
                stats.updates_sent as f64 / secs,
            );
        }
    }
}
