//! Figure 10: rate at which the network drops data (Gbit/s) vs load.
//!
//! Paper result (H): sfqCoDel drops up to ~8% of bytes (>100 Gbit/s at
//! 0.8 load), pFabric ~6%; Flowtune, DCTCP and XCP drop negligibly.

use flowtune_bench::{run_cell, CellSpec, Opts};
use flowtune_sim::{Scheme, MS};
use flowtune_workload::Workload;

fn main() {
    let opts = Opts::parse();
    opts.require_in_process("fig10_drops");
    let servers = opts.scaled(144, 48) as usize;
    let horizon = opts.scaled(60 * MS, 8 * MS);
    let drain = opts.scaled(40 * MS, 30 * MS);
    let loads: &[f64] = if opts.quick {
        &[0.4, 0.8]
    } else {
        &[0.2, 0.4, 0.6, 0.8]
    };
    println!("# Figure 10 — dropped data (Gbit/s), and as % of delivered");
    println!("load,scheme,drop_gbps,drop_pct_of_offered");
    for &load in loads {
        for scheme in Scheme::ALL {
            let r = run_cell(&CellSpec {
                scheme,
                engine: opts.engine.clone(),
                flowtune: opts.config(),
                workload: Workload::Web,
                load,
                servers,
                horizon_ps: horizon,
                drain_ps: drain,
                seed: opts.seed,
            });
            let offered_gbps = load * servers as f64 * 10.0;
            println!(
                "{load},{},{:.3},{:.2}",
                r.scheme,
                r.drop_gbps,
                100.0 * r.drop_gbps / offered_gbps
            );
        }
    }
}
