//! `service_tick` — the tick-latency table behind the CI perf gate.
//!
//! Measures the steady-state `TickDriver::tick` latency (µs/tick) of
//! every engine configuration, including the sharded control plane's
//! concurrent (`sharded4par`) vs sequential (`sharded4seq`) 4-shard
//! rows, whose ratio is the whole point of the per-shard-threads work:
//! on a multi-core runner the parallel row must beat the sequential one.
//!
//! Flags:
//!
//! * `--json` — machine-readable output on stdout (the format
//!   `BENCH_BASELINE.json` stores);
//! * `--baseline PATH` — compare against a committed baseline and exit
//!   nonzero with a per-row diff when any row regressed beyond the
//!   tolerance (faster rows never fail — refresh the baseline when an
//!   intentional speedup lands);
//! * `--tolerance F` — allowed per-row slowdown vs the baseline
//!   (default 0.25 = 25%);
//! * `--min-speedup R` — additionally require
//!   `sharded4seq / sharded4par ≥ R` (the Figure-7 scaling story; only
//!   meaningful on multi-core runners);
//! * `--flows N` / `--ticks N` / `--samples N` — workload size and
//!   measurement shape (defaults 512 / 200 / 3; µs/tick is the best
//!   sample, which is robust against scheduler noise).
//!
//! To update the committed baseline after an intentional perf change:
//! `cargo run --release -p flowtune-bench --bin service_tick -- --json > BENCH_BASELINE.json`

use std::time::Instant;

use flowtune::{
    AllocatorService, BoxTickDriver, Engine, FlowtuneConfig, PlacementSpec, TickDriver,
    TrafficMatrix,
};
use flowtune_bench::cli::{self, WireTransport};
use flowtune_proto::{Message, Token};
use flowtune_topo::{ClosConfig, TwoTierClos};

struct Opts {
    json: bool,
    baseline: Option<String>,
    tolerance: f64,
    min_speedup: Option<f64>,
    flows: usize,
    ticks: u32,
    samples: u32,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            json: false,
            baseline: None,
            tolerance: 0.25,
            min_speedup: None,
            flows: 512,
            ticks: 200,
            samples: 3,
        }
    }
}

impl Opts {
    fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut opts = Self::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            let mut value =
                |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
            match a.as_str() {
                "--json" => opts.json = true,
                "--baseline" => opts.baseline = Some(value("--baseline")),
                "--tolerance" => {
                    opts.tolerance = value("--tolerance")
                        .parse()
                        .expect("--tolerance needs a number");
                }
                "--min-speedup" => {
                    opts.min_speedup = Some(
                        value("--min-speedup")
                            .parse()
                            .expect("--min-speedup needs a number"),
                    );
                }
                "--flows" => {
                    opts.flows = value("--flows").parse().expect("--flows needs an integer");
                }
                "--ticks" => {
                    opts.ticks = value("--ticks").parse().expect("--ticks needs an integer");
                }
                "--samples" => {
                    opts.samples = value("--samples")
                        .parse()
                        .expect("--samples needs an integer");
                }
                other => panic!(
                    "unknown flag {other}; use --json|--baseline PATH|--tolerance F|\
                     --min-speedup R|--flows N|--ticks N|--samples N"
                ),
            }
        }
        assert!(opts.ticks > 0 && opts.samples > 0, "need ticks and samples");
        opts
    }
}

/// One measured configuration. `parallel` is `None` for unsharded rows;
/// `affine` rows load the interleaved rack-affine flow set (the
/// communicating-racks workload shard placement exists for) instead of
/// the pseudo-uniform one.
struct RowSpec {
    label: &'static str,
    engine: Engine,
    exchange_every: u64,
    parallel: Option<bool>,
    placement: PlacementSpec,
    affine: bool,
    /// Exchange delta filter for the row (the placement pair runs a
    /// small positive eps, as a deployment would: with eps = 0 the
    /// decay tails of never-loaded links' duals ship from every shard
    /// identically under any placement and drown the comparison).
    delta_eps: f64,
    /// The wire for the row's exchange: `InProcess` keeps the historic
    /// `ShardedService`; a wire transport runs the same shards as
    /// `ShardPeer`s speaking the serialized frames over it.
    wire: WireTransport,
}

fn rows() -> Vec<RowSpec> {
    let row = |label, engine, exchange_every, parallel| RowSpec {
        label,
        engine,
        exchange_every,
        parallel,
        placement: PlacementSpec::Contiguous,
        affine: false,
        delta_eps: 0.0,
        wire: WireTransport::InProcess,
    };
    let placed = |label, placement, affine| RowSpec {
        label,
        engine: Engine::Serial.sharded(2),
        exchange_every: 1,
        parallel: None,
        placement,
        affine,
        delta_eps: 1e-3,
        wire: WireTransport::InProcess,
    };
    vec![
        row("serial", Engine::Serial, 0, None),
        row("multicore", Engine::Multicore { workers: 0 }, 0, None),
        row("fastpass", Engine::Fastpass, 0, None),
        row("gradient", Engine::Gradient, 0, None),
        row("sharded2", Engine::Serial.sharded(2), 0, None),
        row("sharded2x1", Engine::Serial.sharded(2), 1, None),
        // The wire row: the same 2-shard per-tick exchange as
        // `sharded2x1`, but each shard is a `ShardPeer` and every frame
        // crosses a real Unix-domain socket. The gap between the two is
        // the price of serialization plus the kernel round-trip.
        RowSpec {
            wire: WireTransport::Uds,
            ..row("sharded2uds", Engine::Serial.sharded(2), 1, None)
        },
        // The placement pair: identical rack-affine flows with a
        // per-tick exchange, partitioned contiguously vs by the traffic
        // matrix. The placed row prices almost every link from one side
        // only, so its exchange (and tick) stays cheaper — the
        // `exchange_bytes` gap is printed alongside the table.
        placed("sharded2aff", PlacementSpec::Contiguous, true),
        placed(
            "sharded2place",
            PlacementSpec::Traffic { refine: true },
            true,
        ),
        // The headline pair: identical 4-shard work with a per-tick
        // exchange, ticked sequentially vs on per-shard OS threads.
        row("sharded4seq", Engine::Serial.sharded(4), 1, Some(false)),
        row("sharded4par", Engine::Serial.sharded(4), 1, Some(true)),
    ]
}

/// The `(src, dst)` endpoint pair of pseudo-random flow `f`: uniform by
/// default, or — for the placement rows — rack-affine over two
/// interleaved rack classes (destination rack shares `src`'s class
/// parity but is never the source rack itself).
fn endpoints(fabric: &TwoTierClos, f: usize, affine: bool) -> (usize, usize) {
    let servers = fabric.config().server_count();
    let src = (f * 7919) % servers;
    if !affine {
        let mut dst = (f * 104_729 + 13) % servers;
        if dst == src {
            dst = (dst + 1) % servers;
        }
        return (src, dst);
    }
    let spr = fabric.config().servers_per_rack;
    let racks = servers / spr;
    let src_rack = src / spr;
    // Same-parity racks, excluding the source rack.
    let class = src_rack % 2;
    let choices = racks / 2 - 1;
    let mut pick = class + 2 * ((f * 104_729 + 13) % choices);
    if pick >= src_rack {
        pick += 2;
    }
    (src, pick * spr + (f * 31) % spr)
}

/// Loads `flows` pseudo-random flowlets into a fresh driver and
/// converges it so measurement sees the suppressed steady state. The
/// placement rows feed the placer the exact traffic matrix of the flow
/// set they load.
fn loaded_driver(fabric: &TwoTierClos, spec: &RowSpec, flows: usize) -> BoxTickDriver {
    let cfg = FlowtuneConfig {
        exchange_every: spec.exchange_every,
        exchange_delta_eps: spec.delta_eps,
        parallel_shards: spec
            .parallel
            .unwrap_or(FlowtuneConfig::default().parallel_shards),
        placement: spec.placement,
        ..FlowtuneConfig::default()
    };
    let mut svc = if spec.wire == WireTransport::InProcess {
        let mut builder = AllocatorService::builder()
            .fabric(fabric)
            .config(cfg)
            .engine(spec.engine.clone());
        if spec.placement != PlacementSpec::Contiguous {
            let spr = fabric.config().servers_per_rack;
            let racks = fabric.config().server_count() / spr;
            let mut matrix = TrafficMatrix::new(racks);
            for f in 0..flows {
                let (src, dst) = endpoints(fabric, f, spec.affine);
                matrix.add(src / spr, dst / spr, 1_000_000.0);
            }
            builder = builder.traffic_matrix(matrix);
        }
        builder
            .build_driver()
            .expect("fabric is set and the engine spec is sane")
    } else {
        let opts = cli::Opts {
            engine: spec.engine.clone(),
            exchange_every: spec.exchange_every,
            exchange_delta_eps: spec.delta_eps,
            parallel_shards: spec.parallel,
            placement: spec.placement,
            transport: spec.wire,
            ..cli::Opts::default()
        };
        opts.wire_driver(fabric)
            .expect("wire row has a wire transport")
    };
    for f in 0..flows {
        let (src, dst) = endpoints(fabric, f, spec.affine);
        let spine = fabric.ecmp_spine(src, dst, flowtune_topo::FlowId(f as u64));
        svc.on_message(Message::FlowletStart {
            token: Token::new(f as u32),
            src: src as u16,
            dst: dst as u16,
            size_hint: 1_000_000,
            weight_q8: 256,
            spine: spine as u8,
        })
        .expect("unique tokens");
    }
    for _ in 0..200 {
        svc.tick();
    }
    svc
}

fn measure(svc: &mut BoxTickDriver, ticks: u32, samples: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..ticks {
            svc.tick();
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best * 1e6 / ticks as f64
}

/// Extracts `(label, us_per_tick)` pairs from this binary's `--json`
/// output (a deliberately flat format, so no JSON library is needed).
fn parse_rows(json: &str) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find("\"label\"") {
        rest = &rest[pos + "\"label\"".len()..];
        let Some(q1) = rest.find('"') else { break };
        rest = &rest[q1 + 1..];
        let Some(q2) = rest.find('"') else { break };
        let label = rest[..q2].to_string();
        rest = &rest[q2 + 1..];
        let Some(kpos) = rest.find("\"us_per_tick\"") else {
            break;
        };
        rest = &rest[kpos + "\"us_per_tick\"".len()..];
        let Some(cpos) = rest.find(':') else { break };
        rest = rest[cpos + 1..].trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
            .unwrap_or(rest.len());
        let Ok(value) = rest[..end].parse::<f64>() else {
            break;
        };
        rows.push((label, value));
        rest = &rest[end..];
    }
    rows
}

/// Compares measured rows against the baseline; returns human-readable
/// failure lines (empty = the gate passes). Regressions beyond
/// `tolerance` fail; rows *faster* than the baseline never do.
fn compare(measured: &[(String, f64)], baseline: &[(String, f64)], tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for (label, us) in measured {
        match baseline.iter().find(|(l, _)| l == label) {
            Some((_, base)) => {
                let delta = us / base - 1.0;
                if delta > tolerance {
                    failures.push(format!(
                        "row `{label}`: {us:.2} µs/tick vs baseline {base:.2} µs/tick \
                         (+{:.1}% > {:.0}% tolerance)",
                        delta * 100.0,
                        tolerance * 100.0
                    ));
                }
            }
            None => failures.push(format!(
                "row `{label}` has no entry in the baseline — regenerate it"
            )),
        }
    }
    failures
}

const BASELINE_HOWTO: &str = "\
bench-baseline-update: to refresh the committed baseline after an \
intentional perf change, run\n\
  cargo run --release -p flowtune-bench --bin service_tick -- --json > BENCH_BASELINE.json\n\
on the CI runner class and commit BENCH_BASELINE.json alongside the \
change that moved the numbers, explaining the move in the commit message.";

fn main() {
    let opts = Opts::parse(std::env::args().skip(1));
    // Four blocks of two 16-server racks: a fabric whose block count the
    // multicore grid (B² = 16 workers) and both the 2- and 4-shard
    // partitions map onto naturally.
    let fabric = TwoTierClos::build(ClosConfig::multicore(4, 2, 16));

    let mut measured: Vec<(String, f64)> = Vec::new();
    let mut exchange_bytes: Vec<(&'static str, u64)> = Vec::new();
    for spec in rows() {
        let mut svc = loaded_driver(&fabric, &spec, opts.flows);
        let us = measure(&mut svc, opts.ticks, opts.samples);
        if !opts.json {
            println!("service_tick/{:<13} {:>10.2} µs/tick", spec.label, us);
        }
        if spec.affine {
            exchange_bytes.push((spec.label, svc.stats().exchange_bytes));
        }
        measured.push((spec.label.to_string(), us));
    }
    if !opts.json {
        // The placement story in one line: same affine flows, same
        // exchange cadence, contiguous vs traffic-matrix placement.
        for (label, bytes) in &exchange_bytes {
            println!("exchange bytes {label:<13} {bytes:>12}");
        }
    }

    let speedup = {
        let us_of = |label: &str| {
            measured
                .iter()
                .find(|(l, _)| l == label)
                .map(|&(_, us)| us)
                .expect("row is always measured")
        };
        us_of("sharded4seq") / us_of("sharded4par")
    };
    if !opts.json {
        println!("sharded 4-way parallel speedup: {speedup:.2}x");
    }

    if opts.json {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"flows\": {},\n  \"ticks\": {},\n  \"samples\": {},\n  \"rows\": [\n",
            opts.flows, opts.ticks, opts.samples
        ));
        for (i, (label, us)) in measured.iter().enumerate() {
            let comma = if i + 1 < measured.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"label\": \"{label}\", \"us_per_tick\": {us:.3}}}{comma}\n"
            ));
        }
        out.push_str("  ]\n}");
        println!("{out}");
    }

    let mut failures = Vec::new();
    if let Some(path) = &opts.baseline {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = parse_rows(&text);
        assert!(!baseline.is_empty(), "baseline {path} holds no rows");
        failures.extend(compare(&measured, &baseline, opts.tolerance));
    }
    if let Some(min) = opts.min_speedup {
        if speedup < min {
            failures.push(format!(
                "sharded4seq/sharded4par speedup {speedup:.2}x is below the required {min:.2}x"
            ));
        }
    }
    if !failures.is_empty() {
        eprintln!("service_tick perf gate FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        eprintln!("{BASELINE_HOWTO}");
        std::process::exit(1);
    }
    if opts.baseline.is_some() && !opts.json {
        println!(
            "perf gate passed (tolerance {:.0}%)",
            opts.tolerance * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rows_roundtrips_the_json_shape() {
        let json = r#"{
  "flows": 512,
  "ticks": 200,
  "samples": 3,
  "rows": [
    {"label": "serial", "us_per_tick": 58.125},
    {"label": "sharded4par", "us_per_tick": 31.5}
  ]
}"#;
        assert_eq!(
            parse_rows(json),
            vec![
                ("serial".to_string(), 58.125),
                ("sharded4par".to_string(), 31.5)
            ]
        );
        assert!(parse_rows("{}").is_empty());
    }

    #[test]
    fn compare_fails_only_on_regressions_beyond_tolerance() {
        let base = vec![("a".to_string(), 100.0), ("b".to_string(), 10.0)];
        // Within tolerance and faster: pass.
        let ok = vec![("a".to_string(), 120.0), ("b".to_string(), 5.0)];
        assert!(compare(&ok, &base, 0.25).is_empty());
        // Beyond tolerance: named, with both numbers in the message.
        let slow = vec![("a".to_string(), 130.0), ("b".to_string(), 10.0)];
        let failures = compare(&slow, &base, 0.25);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("`a`"), "{failures:?}");
        assert!(failures[0].contains("130.00"), "{failures:?}");
        assert!(failures[0].contains("100.00"), "{failures:?}");
        // A row the baseline has never seen forces a regeneration.
        let novel = vec![("new".to_string(), 1.0)];
        let failures = compare(&novel, &base, 0.25);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("no entry"), "{failures:?}");
    }

    #[test]
    fn the_headline_rows_are_measured() {
        let labels: Vec<&str> = rows().iter().map(|r| r.label).collect();
        for needed in ["serial", "sharded2uds", "sharded4seq", "sharded4par"] {
            assert!(labels.contains(&needed), "{needed} missing from {labels:?}");
        }
    }
}
