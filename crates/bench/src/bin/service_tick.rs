//! `service_tick` — the tick-latency table behind the CI perf gate.
//!
//! Measures the steady-state `TickDriver::tick` latency (µs/tick) of
//! every engine configuration, including the sharded control plane's
//! concurrent (`sharded4par`) vs sequential (`sharded4seq`) 4-shard
//! rows, whose ratio is the whole point of the per-shard-threads work:
//! on a multi-core runner the parallel row must beat the sequential one.
//! The `allreduce` and `permshift` rows price the scenario tick path:
//! a ring-allreduce phase, and a rotating permutation whose churn edges
//! go through real intake every few measured ticks.
//!
//! Flags:
//!
//! * `--json` — machine-readable output on stdout (the format
//!   `BENCH_BASELINE.json` stores);
//! * `--baseline PATH` — compare against a committed baseline and exit
//!   nonzero with a per-row diff when any row regressed beyond the
//!   tolerance (faster rows never fail — refresh the baseline when an
//!   intentional speedup lands);
//! * `--tolerance F` — allowed per-row slowdown vs the baseline
//!   (default 0.25 = 25%);
//! * `--min-speedup R` — additionally require
//!   `sharded4seq / sharded4par ≥ R` (the Figure-7 scaling story; only
//!   meaningful on multi-core runners);
//! * `--min-inc-speedup R` — additionally require
//!   `quiet100k_full / quiet100k_inc ≥ R` (the incremental-tick story:
//!   a quiet 10⁵-flow tick must be at least R× faster incrementally);
//! * `--quiet-tolerance F` — separate slowdown tolerance for the
//!   `quiet*` rows (default 1.0: the incremental quiet tick is
//!   sub-microsecond, so scheduler noise moves it proportionally more —
//!   the load-bearing regression gate for it is `--min-inc-speedup`,
//!   which is a same-run ratio and immune to runner speed);
//! * `--flows N` / `--ticks N` / `--samples N` — workload size and
//!   measurement shape (defaults 512 / 200 / 3; µs/tick is the best
//!   sample, which is robust against scheduler noise). The `quiet100k*`
//!   rows pin their own flow and tick counts and ignore `--flows` /
//!   `--ticks`.
//!
//! `--json` rows also carry a per-phase µs/tick breakdown
//! (intake/allocate/export/exchange, averaged over the measured ticks)
//! and the per-tick `dirty_flows` / `dirty_links` averages of
//! incremental rows — the keys come after `us_per_tick`, which is all
//! the baseline comparator reads.
//!
//! To update the committed baseline after an intentional perf change:
//! `cargo run --release -p flowtune-bench --bin service_tick -- --json > BENCH_BASELINE.json`

use std::time::{Duration, Instant};

use flowtune::{
    AllocatorService, BoxTickDriver, Engine, FlowtuneConfig, PlacementSpec, TickDriver,
    TrafficMatrix,
};
use flowtune_bench::cli::{self, WireTransport};
use flowtune_proto::{Message, Token};
use flowtune_topo::{ClosConfig, TwoTierClos};
use flowtune_workload::ScenarioKind;

struct Opts {
    json: bool,
    baseline: Option<String>,
    tolerance: f64,
    quiet_tolerance: f64,
    min_speedup: Option<f64>,
    min_inc_speedup: Option<f64>,
    flows: usize,
    ticks: u32,
    samples: u32,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            json: false,
            baseline: None,
            tolerance: 0.25,
            quiet_tolerance: 1.0,
            min_speedup: None,
            min_inc_speedup: None,
            flows: 512,
            ticks: 200,
            samples: 3,
        }
    }
}

impl Opts {
    fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut opts = Self::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            let mut value =
                |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
            match a.as_str() {
                "--json" => opts.json = true,
                "--baseline" => opts.baseline = Some(value("--baseline")),
                "--tolerance" => {
                    opts.tolerance = value("--tolerance")
                        .parse()
                        .expect("--tolerance needs a number");
                }
                "--min-speedup" => {
                    opts.min_speedup = Some(
                        value("--min-speedup")
                            .parse()
                            .expect("--min-speedup needs a number"),
                    );
                }
                "--min-inc-speedup" => {
                    opts.min_inc_speedup = Some(
                        value("--min-inc-speedup")
                            .parse()
                            .expect("--min-inc-speedup needs a number"),
                    );
                }
                "--quiet-tolerance" => {
                    opts.quiet_tolerance = value("--quiet-tolerance")
                        .parse()
                        .expect("--quiet-tolerance needs a number");
                }
                "--flows" => {
                    opts.flows = value("--flows").parse().expect("--flows needs an integer");
                }
                "--ticks" => {
                    opts.ticks = value("--ticks").parse().expect("--ticks needs an integer");
                }
                "--samples" => {
                    opts.samples = value("--samples")
                        .parse()
                        .expect("--samples needs an integer");
                }
                other => panic!(
                    "unknown flag {other}; use --json|--baseline PATH|--tolerance F|\
                     --quiet-tolerance F|--min-speedup R|--min-inc-speedup R|\
                     --flows N|--ticks N|--samples N"
                ),
            }
        }
        assert!(opts.ticks > 0 && opts.samples > 0, "need ticks and samples");
        opts
    }
}

/// One measured configuration. `parallel` is `None` for unsharded rows;
/// `affine` rows load the interleaved rack-affine flow set (the
/// communicating-racks workload shard placement exists for) instead of
/// the pseudo-uniform one.
struct RowSpec {
    label: &'static str,
    engine: Engine,
    exchange_every: u64,
    parallel: Option<bool>,
    placement: PlacementSpec,
    affine: bool,
    /// Exchange delta filter for the row (the placement pair runs a
    /// small positive eps, as a deployment would: with eps = 0 the
    /// decay tails of never-loaded links' duals ship from every shard
    /// identically under any placement and drown the comparison).
    delta_eps: f64,
    /// The wire for the row's exchange: `InProcess` keeps the historic
    /// `ShardedService`; a wire transport runs the same shards as
    /// `ShardPeer`s speaking the serialized frames over it.
    wire: WireTransport,
    /// Incremental NED ticks for the row (the `quiet100k_inc` row; at
    /// `dirty_eps = 0` the rates are bit-for-bit equal to the full
    /// sweep, so the row measures pure bookkeeping cost).
    incremental: bool,
    /// Row override of the workload size (`None` = the `--flows` flag).
    /// The quiet rows pin 10⁵ flows — the scale where the incremental
    /// win is the headline.
    flows: Option<usize>,
    /// Row override of the measured tick count (`None` = `--ticks`).
    /// The quiet full-sweep row at 10⁵ flows costs milliseconds per
    /// tick, so it measures fewer of them.
    ticks: Option<u32>,
    /// Convergence ticks before measurement (the default 200 suits the
    /// 512-flow rows; the 10⁵-flow quiet rows need more before the
    /// threshold filter suppresses everything).
    warmup: u32,
    /// Incremental dirty threshold for the row (config `dirty_eps`).
    dirty_eps: f64,
    /// Structured workload for the row (`None` = the pseudo-random
    /// flow set): the driver is loaded with the scenario's first phase
    /// instead — a ring-allreduce step for the `allreduce` row — and
    /// the `permshift` row additionally re-permutes the fabric through
    /// real `FlowletStart`/`End` intake every few measured ticks, so
    /// the row prices the scenario tick path (intake churn included),
    /// not just a converged steady state.
    scenario: Option<ScenarioKind>,
}

fn rows() -> Vec<RowSpec> {
    let row = |label, engine, exchange_every, parallel| RowSpec {
        label,
        engine,
        exchange_every,
        parallel,
        placement: PlacementSpec::Contiguous,
        affine: false,
        delta_eps: 0.0,
        wire: WireTransport::InProcess,
        incremental: false,
        flows: None,
        ticks: None,
        warmup: 200,
        dirty_eps: 0.0,
        scenario: None,
    };
    // The incremental pair: identical converged 10⁵-flow steady state
    // (no churn, so every tick is quiet), swept fully vs incrementally.
    // The gap is the tentpole: a quiet incremental tick touches no
    // flows, so it costs bookkeeping, not O(flows) arithmetic.
    let quiet = |label, incremental| RowSpec {
        incremental,
        flows: Some(100_000),
        ticks: Some(50),
        warmup: 600,
        // At this scale NED's converged prices still jitter in their
        // last few bits, so an eps-0 incremental run re-dirties every
        // flow forever. An eps of 1e-9 — ten orders of magnitude below
        // the converged price scale — lets the quiet-iteration gate
        // quiesce, after which the only per-window work is the periodic
        // full sweep (config default, every 64 ticks). The eps-0
        // bitwise-equivalence story is pinned by the equivalence tests,
        // not this row.
        dirty_eps: if incremental { 1e-9 } else { 0.0 },
        ..row(label, Engine::Serial, 0, None)
    };
    let placed = |label, placement, affine| RowSpec {
        label,
        engine: Engine::Serial.sharded(2),
        exchange_every: 1,
        parallel: None,
        placement,
        affine,
        delta_eps: 1e-3,
        wire: WireTransport::InProcess,
        incremental: false,
        flows: None,
        ticks: None,
        warmup: 200,
        dirty_eps: 0.0,
        scenario: None,
    };
    vec![
        row("serial", Engine::Serial, 0, None),
        row("multicore", Engine::Multicore { workers: 0 }, 0, None),
        row("fastpass", Engine::Fastpass, 0, None),
        row("gradient", Engine::Gradient, 0, None),
        row("sharded2", Engine::Serial.sharded(2), 0, None),
        row("sharded2x1", Engine::Serial.sharded(2), 1, None),
        // The wire rows: the same 2-shard per-tick exchange as
        // `sharded2x1`, but each shard is a `ShardPeer` with the async
        // receiver runtime (mailbox threads + non-blocking barrier).
        // `sharded2mem` runs it over the in-memory channel mesh — the
        // runtime's own cost with no kernel in the path; `sharded2uds`
        // adds real Unix-domain sockets — serialization plus the kernel
        // round-trip.
        RowSpec {
            wire: WireTransport::Mem,
            ..row("sharded2mem", Engine::Serial.sharded(2), 1, None)
        },
        RowSpec {
            wire: WireTransport::Uds,
            ..row("sharded2uds", Engine::Serial.sharded(2), 1, None)
        },
        // The placement pair: identical rack-affine flows with a
        // per-tick exchange, partitioned contiguously vs by the traffic
        // matrix. The placed row prices almost every link from one side
        // only, so its exchange (and tick) stays cheaper — the
        // `exchange_bytes` gap is printed alongside the table.
        placed("sharded2aff", PlacementSpec::Contiguous, true),
        placed(
            "sharded2place",
            PlacementSpec::Traffic { refine: true },
            true,
        ),
        // The headline pair: identical 4-shard work with a per-tick
        // exchange, ticked sequentially vs on per-shard OS threads.
        row("sharded4seq", Engine::Serial.sharded(4), 1, Some(false)),
        row("sharded4par", Engine::Serial.sharded(4), 1, Some(true)),
        quiet("quiet100k_full", false),
        quiet("quiet100k_inc", true),
        // The scenario rows (ISSUE 10): the serial engine priced on
        // structured workloads instead of the pseudo-random set — one
        // ring-allreduce phase (a full ring permutation of the 128
        // servers), and a permutation-shift churn workload whose
        // rotation edges flow through real intake during measurement.
        RowSpec {
            scenario: Some(ScenarioKind::AllreduceRing),
            ..row("allreduce", Engine::Serial, 0, None)
        },
        RowSpec {
            scenario: Some(ScenarioKind::PermShift),
            ..row("permshift", Engine::Serial, 0, None)
        },
    ]
}

/// Rotating-permutation churn for the `permshift` row: every
/// [`PermChurn::ROTATE_EVERY`] measured ticks, ends the live
/// permutation and admits the next shift's — the scenario's admission
/// edges as real intake, so the row's µs/tick includes the churn cost
/// a rotating workload actually pays.
struct PermChurn {
    servers: usize,
    live: Vec<u32>,
    next_token: u32,
    shift: usize,
    tick: u32,
}

impl PermChurn {
    const ROTATE_EVERY: u32 = 16;

    /// `live` holds the tokens of the already-loaded shift-1
    /// permutation ([`loaded_driver`] admits the scenario's first
    /// phase with tokens `0..servers`).
    fn new(servers: usize) -> Self {
        Self {
            servers,
            live: (0..servers as u32).collect(),
            next_token: servers as u32,
            shift: 1,
            tick: 0,
        }
    }

    fn step(&mut self, fabric: &TwoTierClos, svc: &mut BoxTickDriver) {
        self.tick += 1;
        if !self.tick.is_multiple_of(Self::ROTATE_EVERY) {
            return;
        }
        for &t in &self.live {
            svc.on_message(Message::FlowletEnd {
                token: Token::new(t),
            })
            .expect("live token");
        }
        self.live.clear();
        self.shift = self.shift % (self.servers - 1) + 1;
        for src in 0..self.servers {
            let dst = (src + self.shift) % self.servers;
            let token = self.next_token;
            self.next_token += 1;
            let spine = fabric.ecmp_spine(src, dst, flowtune_topo::FlowId(token as u64));
            svc.on_message(Message::FlowletStart {
                token: Token::new(token),
                src: src as u16,
                dst: dst as u16,
                size_hint: 1_000_000,
                weight_q8: 256,
                spine: spine as u8,
            })
            .expect("fresh token");
            self.live.push(token);
        }
    }
}

/// The `(src, dst)` endpoint pair of pseudo-random flow `f`: uniform by
/// default, or — for the placement rows — rack-affine over two
/// interleaved rack classes (destination rack shares `src`'s class
/// parity but is never the source rack itself).
fn endpoints(fabric: &TwoTierClos, f: usize, affine: bool) -> (usize, usize) {
    let servers = fabric.config().server_count();
    let src = (f * 7919) % servers;
    if !affine {
        let mut dst = (f * 104_729 + 13) % servers;
        if dst == src {
            dst = (dst + 1) % servers;
        }
        return (src, dst);
    }
    let spr = fabric.config().servers_per_rack;
    let racks = servers / spr;
    let src_rack = src / spr;
    // Same-parity racks, excluding the source rack.
    let class = src_rack % 2;
    let choices = racks / 2 - 1;
    let mut pick = class + 2 * ((f * 104_729 + 13) % choices);
    if pick >= src_rack {
        pick += 2;
    }
    (src, pick * spr + (f * 31) % spr)
}

/// Loads `flows` pseudo-random flowlets into a fresh driver and
/// converges it so measurement sees the suppressed steady state. The
/// placement rows feed the placer the exact traffic matrix of the flow
/// set they load.
fn loaded_driver(fabric: &TwoTierClos, spec: &RowSpec, flows: usize) -> BoxTickDriver {
    let cfg = FlowtuneConfig {
        exchange_every: spec.exchange_every,
        exchange_delta_eps: spec.delta_eps,
        parallel_shards: spec
            .parallel
            .unwrap_or(FlowtuneConfig::default().parallel_shards),
        placement: spec.placement,
        incremental: spec.incremental,
        dirty_eps: spec.dirty_eps,
        ..FlowtuneConfig::default()
    };
    let mut svc = if spec.wire == WireTransport::InProcess {
        let mut builder = AllocatorService::builder()
            .fabric(fabric)
            .config(cfg)
            .engine(spec.engine.clone());
        if spec.placement != PlacementSpec::Contiguous {
            let spr = fabric.config().servers_per_rack;
            let racks = fabric.config().server_count() / spr;
            let mut matrix = TrafficMatrix::new(racks);
            for f in 0..flows {
                let (src, dst) = endpoints(fabric, f, spec.affine);
                matrix.add(src / spr, dst / spr, 1_000_000.0);
            }
            builder = builder.traffic_matrix(matrix);
        }
        builder
            .build_driver()
            .expect("fabric is set and the engine spec is sane")
    } else {
        let opts = cli::Opts {
            engine: spec.engine.clone(),
            exchange_every: spec.exchange_every,
            exchange_delta_eps: spec.delta_eps,
            parallel_shards: spec.parallel,
            placement: spec.placement,
            transport: spec.wire,
            ..cli::Opts::default()
        };
        opts.wire_driver(fabric)
            .expect("wire row has a wire transport")
    };
    // Scenario rows load the scenario's first phase; the rest load the
    // pseudo-random set sized by `flows`.
    let pairs: Vec<(usize, usize)> = match spec.scenario {
        Some(kind) => {
            let servers = fabric.config().server_count() as u32;
            let mut scenario = kind.build(servers, 1_000_000);
            let phase = scenario.next_phase().expect("scenarios open with a phase");
            phase
                .flows
                .iter()
                .map(|f| (f.src as usize, f.dst as usize))
                .collect()
        }
        None => (0..flows)
            .map(|f| endpoints(fabric, f, spec.affine))
            .collect(),
    };
    for (f, &(src, dst)) in pairs.iter().enumerate() {
        let spine = fabric.ecmp_spine(src, dst, flowtune_topo::FlowId(f as u64));
        svc.on_message(Message::FlowletStart {
            token: Token::new(f as u32),
            src: src as u16,
            dst: dst as u16,
            size_hint: 1_000_000,
            weight_q8: 256,
            spine: spine as u8,
        })
        .expect("unique tokens");
    }
    for _ in 0..spec.warmup {
        svc.tick();
    }
    svc
}

fn measure(
    svc: &mut BoxTickDriver,
    ticks: u32,
    samples: u32,
    fabric: &TwoTierClos,
    mut churn: Option<&mut PermChurn>,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..ticks {
            if let Some(c) = churn.as_deref_mut() {
                c.step(fabric, svc);
            }
            svc.tick();
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best * 1e6 / ticks as f64
}

/// Extracts `(label, us_per_tick)` pairs from this binary's `--json`
/// output (a deliberately flat format, so no JSON library is needed).
fn parse_rows(json: &str) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find("\"label\"") {
        rest = &rest[pos + "\"label\"".len()..];
        let Some(q1) = rest.find('"') else { break };
        rest = &rest[q1 + 1..];
        let Some(q2) = rest.find('"') else { break };
        let label = rest[..q2].to_string();
        rest = &rest[q2 + 1..];
        let Some(kpos) = rest.find("\"us_per_tick\"") else {
            break;
        };
        rest = &rest[kpos + "\"us_per_tick\"".len()..];
        let Some(cpos) = rest.find(':') else { break };
        rest = rest[cpos + 1..].trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
            .unwrap_or(rest.len());
        let Ok(value) = rest[..end].parse::<f64>() else {
            break;
        };
        rows.push((label, value));
        rest = &rest[end..];
    }
    rows
}

/// Compares measured rows against the baseline; returns human-readable
/// failure lines (empty = the gate passes). Regressions beyond
/// `tolerance` fail; rows *faster* than the baseline never do.
fn compare(measured: &[(String, f64)], baseline: &[(String, f64)], tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for (label, us) in measured {
        match baseline.iter().find(|(l, _)| l == label) {
            Some((_, base)) => {
                let delta = us / base - 1.0;
                if delta > tolerance {
                    failures.push(format!(
                        "row `{label}`: {us:.2} µs/tick vs baseline {base:.2} µs/tick \
                         (+{:.1}% > {:.0}% tolerance)",
                        delta * 100.0,
                        tolerance * 100.0
                    ));
                }
            }
            None => failures.push(format!(
                "row `{label}` has no entry in the baseline — regenerate it"
            )),
        }
    }
    failures
}

const BASELINE_HOWTO: &str = "\
bench-baseline-update: to refresh the committed baseline after an \
intentional perf change, run\n\
  cargo run --release -p flowtune-bench --bin service_tick -- --json > BENCH_BASELINE.json\n\
on the CI runner class and commit BENCH_BASELINE.json alongside the \
change that moved the numbers, explaining the move in the commit message.";

fn main() {
    let opts = Opts::parse(std::env::args().skip(1));
    // Four blocks of two 16-server racks: a fabric whose block count the
    // multicore grid (B² = 16 workers) and both the 2- and 4-shard
    // partitions map onto naturally.
    let fabric = TwoTierClos::build(ClosConfig::multicore(4, 2, 16));

    let mut measured: Vec<(String, f64)> = Vec::new();
    // Per row: phase µs/tick (intake/allocate/export/exchange) and the
    // per-tick dirty-flow/dirty-link averages over the measured ticks
    // (zero for non-incremental rows).
    let mut extras: Vec<([f64; 4], f64, f64)> = Vec::new();
    let mut exchange_bytes: Vec<(&'static str, u64)> = Vec::new();
    for spec in rows() {
        let flows = spec.flows.unwrap_or(opts.flows);
        let ticks = spec.ticks.unwrap_or(opts.ticks);
        let mut svc = loaded_driver(&fabric, &spec, flows);
        let mut churn = (spec.scenario == Some(ScenarioKind::PermShift))
            .then(|| PermChurn::new(fabric.config().server_count()));
        let timings0 = svc.phase_timings();
        let stats0 = svc.stats();
        let us = measure(&mut svc, ticks, opts.samples, &fabric, churn.as_mut());
        let timings1 = svc.phase_timings();
        let stats1 = svc.stats();
        let n = f64::from(ticks) * f64::from(opts.samples);
        let per_tick = |a: Duration, b: Duration| (a - b).as_secs_f64() * 1e6 / n;
        extras.push((
            [
                per_tick(timings1.intake, timings0.intake),
                per_tick(timings1.allocate, timings0.allocate),
                per_tick(timings1.export, timings0.export),
                per_tick(timings1.exchange, timings0.exchange),
            ],
            (stats1.dirty_flows - stats0.dirty_flows) as f64 / n,
            (stats1.dirty_links - stats0.dirty_links) as f64 / n,
        ));
        if !opts.json {
            println!("service_tick/{:<14} {:>10.2} µs/tick", spec.label, us);
        }
        if spec.affine {
            exchange_bytes.push((spec.label, svc.stats().exchange_bytes));
        }
        measured.push((spec.label.to_string(), us));
    }
    if !opts.json {
        // The placement story in one line: same affine flows, same
        // exchange cadence, contiguous vs traffic-matrix placement.
        for (label, bytes) in &exchange_bytes {
            println!("exchange bytes {label:<13} {bytes:>12}");
        }
    }

    let us_of = |label: &str| {
        measured
            .iter()
            .find(|(l, _)| l == label)
            .map(|&(_, us)| us)
            .expect("row is always measured")
    };
    let speedup = us_of("sharded4seq") / us_of("sharded4par");
    let inc_speedup = us_of("quiet100k_full") / us_of("quiet100k_inc");
    if !opts.json {
        println!("sharded 4-way parallel speedup: {speedup:.2}x");
        println!("quiet-tick incremental speedup: {inc_speedup:.2}x");
    }

    if opts.json {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"flows\": {},\n  \"ticks\": {},\n  \"samples\": {},\n  \"rows\": [\n",
            opts.flows, opts.ticks, opts.samples
        ));
        for (i, (label, us)) in measured.iter().enumerate() {
            let comma = if i + 1 < measured.len() { "," } else { "" };
            // Extra keys come *after* us_per_tick: the baseline
            // comparator scans label-then-us_per_tick and skips the rest.
            let ([intake, allocate, export, exchange], dirty_flows, dirty_links) = extras[i];
            out.push_str(&format!(
                "    {{\"label\": \"{label}\", \"us_per_tick\": {us:.3}, \
                 \"intake_us\": {intake:.3}, \"allocate_us\": {allocate:.3}, \
                 \"export_us\": {export:.3}, \"exchange_us\": {exchange:.3}, \
                 \"dirty_flows\": {dirty_flows:.1}, \"dirty_links\": {dirty_links:.1}}}{comma}\n"
            ));
        }
        out.push_str("  ]\n}");
        println!("{out}");
    }

    let mut failures = Vec::new();
    if let Some(path) = &opts.baseline {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = parse_rows(&text);
        assert!(!baseline.is_empty(), "baseline {path} holds no rows");
        // The quiet rows gate under their own (looser) tolerance: the
        // incremental quiet tick is fast enough that scheduler noise
        // moves it proportionally more than the loaded rows.
        let (quiet, loaded): (Vec<_>, Vec<_>) = measured
            .iter()
            .cloned()
            .partition(|(l, _)| l.starts_with("quiet"));
        failures.extend(compare(&loaded, &baseline, opts.tolerance));
        failures.extend(compare(&quiet, &baseline, opts.quiet_tolerance));
    }
    if let Some(min) = opts.min_speedup {
        if speedup < min {
            failures.push(format!(
                "sharded4seq/sharded4par speedup {speedup:.2}x is below the required {min:.2}x"
            ));
        }
    }
    if let Some(min) = opts.min_inc_speedup {
        if inc_speedup < min {
            failures.push(format!(
                "quiet100k_full/quiet100k_inc speedup {inc_speedup:.2}x is below the \
                 required {min:.2}x"
            ));
        }
    }
    if !failures.is_empty() {
        eprintln!("service_tick perf gate FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        eprintln!("{BASELINE_HOWTO}");
        std::process::exit(1);
    }
    if opts.baseline.is_some() && !opts.json {
        println!(
            "perf gate passed (tolerance {:.0}%)",
            opts.tolerance * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rows_roundtrips_the_json_shape() {
        let json = r#"{
  "flows": 512,
  "ticks": 200,
  "samples": 3,
  "rows": [
    {"label": "serial", "us_per_tick": 58.125},
    {"label": "sharded4par", "us_per_tick": 31.5}
  ]
}"#;
        assert_eq!(
            parse_rows(json),
            vec![
                ("serial".to_string(), 58.125),
                ("sharded4par".to_string(), 31.5)
            ]
        );
        assert!(parse_rows("{}").is_empty());
    }

    #[test]
    fn compare_fails_only_on_regressions_beyond_tolerance() {
        let base = vec![("a".to_string(), 100.0), ("b".to_string(), 10.0)];
        // Within tolerance and faster: pass.
        let ok = vec![("a".to_string(), 120.0), ("b".to_string(), 5.0)];
        assert!(compare(&ok, &base, 0.25).is_empty());
        // Beyond tolerance: named, with both numbers in the message.
        let slow = vec![("a".to_string(), 130.0), ("b".to_string(), 10.0)];
        let failures = compare(&slow, &base, 0.25);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("`a`"), "{failures:?}");
        assert!(failures[0].contains("130.00"), "{failures:?}");
        assert!(failures[0].contains("100.00"), "{failures:?}");
        // A row the baseline has never seen forces a regeneration.
        let novel = vec![("new".to_string(), 1.0)];
        let failures = compare(&novel, &base, 0.25);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("no entry"), "{failures:?}");
    }

    #[test]
    fn the_headline_rows_are_measured() {
        let labels: Vec<&str> = rows().iter().map(|r| r.label).collect();
        for needed in [
            "serial",
            "sharded2mem",
            "sharded2uds",
            "sharded4seq",
            "sharded4par",
            "quiet100k_full",
            "quiet100k_inc",
            "allreduce",
            "permshift",
        ] {
            assert!(labels.contains(&needed), "{needed} missing from {labels:?}");
        }
        // The incremental pair differs only in the incremental flag, at
        // the 10⁵-flow scale the tentpole targets.
        let all = rows();
        let full = all.iter().find(|r| r.label == "quiet100k_full").unwrap();
        let inc = all.iter().find(|r| r.label == "quiet100k_inc").unwrap();
        assert!(!full.incremental && inc.incremental);
        assert_eq!(full.flows, Some(100_000));
        assert_eq!(inc.flows, full.flows);
        assert_eq!(inc.ticks, full.ticks);
    }

    #[test]
    fn parse_rows_skips_the_extra_keys() {
        let json = r#"{"rows": [
    {"label": "quiet100k_inc", "us_per_tick": 12.5, "intake_us": 0.0, "allocate_us": 9.1, "export_us": 3.0, "exchange_us": 0.0, "dirty_flows": 0.0, "dirty_links": 0.0},
    {"label": "serial", "us_per_tick": 58.125, "intake_us": 1.0, "allocate_us": 40.0, "export_us": 17.0, "exchange_us": 0.0, "dirty_flows": 0.0, "dirty_links": 0.0}
]}"#;
        assert_eq!(
            parse_rows(json),
            vec![
                ("quiet100k_inc".to_string(), 12.5),
                ("serial".to_string(), 58.125)
            ]
        );
    }
}
