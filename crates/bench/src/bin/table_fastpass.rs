//! §6.1 "Throughput scaling and comparison to Fastpass".
//!
//! Measures, on identical hardware: (a) packets/s a Fastpass-style
//! per-packet arbiter allocates per core, as Tbit/s of scheduled traffic;
//! (b) Tbit/s of network the Flowtune allocator manages per core (nodes ×
//! line rate, iterating within its 10 µs budget). The paper's claim is
//! 10.4× per-core advantage (2.2 Tbit/s on 8 cores vs 15.36 on 4).

use std::time::Instant;

use flowtune_alloc::{AllocConfig, MulticoreAllocator};
use flowtune_bench::Opts;
use flowtune_fastpass::Arbiter;
use flowtune_topo::{ClosConfig, FlowId, TwoTierClos};

fn main() {
    let opts = Opts::parse();
    opts.require_in_process("table_fastpass");
    let endpoints = 256usize;
    let mtu = 1500u64;

    // ---- Fastpass-style arbiter: packets scheduled per second per core.
    let mut arb = Arbiter::new(endpoints);
    let demand_rounds = opts.scaled(400, 60);
    for r in 0..demand_rounds {
        for s in 0..endpoints as u16 {
            let d = ((s as u64 + 1 + r) % endpoints as u64) as u16;
            arb.add_demand(s, d, 40);
        }
    }
    let t0 = Instant::now();
    let mut slots = 0u64;
    while arb.backlog() > 0 {
        arb.allocate_slot();
        slots += 1;
    }
    let arb_secs = t0.elapsed().as_secs_f64();
    let arb_tbps = arb.allocated_bits(mtu) as f64 / arb_secs / 1e12;

    // ---- Flowtune: network bandwidth managed per core within 2 RTTs.
    let blocks = 2;
    let fabric = TwoTierClos::build(ClosConfig::multicore(blocks, 4, 48));
    let servers = fabric.config().server_count();
    let mut alloc = MulticoreAllocator::new(&fabric, AllocConfig::default());
    for f in 0..opts.scaled(3072, 1024) {
        let src = (f as usize * 7919) % servers;
        let mut dst = (f as usize * 104_729 + 13) % servers;
        if dst == src {
            dst = (dst + 1) % servers;
        }
        let path = fabric.path(src, dst, FlowId(f));
        alloc.add_flow(FlowId(f), src, dst, 1.0, &path);
    }
    let iters = opts.scaled(1000, 100) as usize;
    alloc.run_iterations(iters / 10 + 1);
    let took = alloc.run_iterations(iters);
    let iter_us = took.as_secs_f64() * 1e6 / iters as f64;
    let cores = blocks * blocks;
    let ft_tbps = servers as f64 * 40e9 / 1e12;

    println!("# §6.1 — Fastpass-style per-packet arbiter vs Flowtune per-flowlet allocator");
    println!("system,cores,allocated_tbps,tbps_per_core,notes");
    println!(
        "fastpass-arbiter,1,{arb_tbps:.3},{arb_tbps:.3},\"{} packets in {:.3} s ({} slots)\"",
        arb.allocated(),
        arb_secs,
        slots
    );
    println!(
        "flowtune,{cores},{ft_tbps:.2},{:.2},\"{} nodes @40G; {iter_us:.2} µs/iteration\"",
        ft_tbps / cores as f64,
        servers
    );
    println!(
        "# per-core ratio: {:.1}x (paper: 10.4x)",
        (ft_tbps / cores as f64) / arb_tbps
    );

    // ---- Cross-check: the same arbiter as an `AllocatorService` engine
    // (`--engine fastpass` anywhere in the harness routes through this
    // adapter), so the baseline is reachable from the public API too.
    let eval = TwoTierClos::build(flowtune_topo::ClosConfig::paper_eval());
    let mut svc = flowtune::AllocatorService::builder()
        .fabric(&eval)
        .engine(flowtune::Engine::Fastpass)
        .build()
        .expect("fabric is set");
    for (i, (src, dst)) in [(0u16, 140u16), (1, 141), (2, 140)].into_iter().enumerate() {
        let msg = flowtune_proto::Message::FlowletStart {
            token: flowtune_proto::Token::new(i as u32 + 1),
            src,
            dst,
            size_hint: 1_000_000,
            weight_q8: 256,
            spine: 0,
        };
        svc.on_message(msg).expect("fresh tokens");
    }
    for _ in 0..60 {
        svc.tick();
    }
    let rates: Vec<f64> = (1..=3)
        .filter_map(|t| svc.flow_rate_gbps(flowtune_proto::Token::new(t)))
        .collect();
    println!(
        "# service[{}]: 3 flowlets (two sharing a receiver) → rates {:.2}/{:.2}/{:.2} Gbit/s",
        svc.engine_name(),
        rates[0],
        rates[1],
        rates[2]
    );
}
