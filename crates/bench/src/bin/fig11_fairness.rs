//! Figure 11: proportional fairness of each scheme relative to Flowtune.
//!
//! The score is the mean per-flow log₂(rate); Figure 11 plots each
//! scheme's score minus Flowtune's (so 0 = as fair; −1 = flows got half
//! the proportionally-fair rate on average). Paper result: DCTCP 1.0–1.9
//! points below Flowtune, pFabric 0.45–0.83, XCP ~1.3, CoDel ~0.25.

use flowtune_bench::{run_cell, CellSpec, Opts};
use flowtune_sim::{Scheme, MS};
use flowtune_workload::Workload;

fn main() {
    let opts = Opts::parse();
    opts.require_in_process("fig11_fairness");
    let servers = opts.scaled(144, 48) as usize;
    let horizon = opts.scaled(60 * MS, 8 * MS);
    let drain = opts.scaled(40 * MS, 30 * MS);
    let loads: &[f64] = if opts.quick {
        &[0.4, 0.8]
    } else {
        &[0.2, 0.4, 0.6, 0.8]
    };
    println!("# Figure 11 — per-flow fairness score relative to Flowtune");
    println!("load,scheme,score,relative_to_flowtune");
    for &load in loads {
        let spec = |scheme| CellSpec {
            scheme,
            engine: opts.engine.clone(),
            flowtune: opts.config(),
            workload: Workload::Web,
            load,
            servers,
            horizon_ps: horizon,
            drain_ps: drain,
            seed: opts.seed,
        };
        let ft = run_cell(&spec(Scheme::Flowtune));
        println!("{load},Flowtune,{:.3},0.000", ft.fairness);
        for scheme in [
            Scheme::Dctcp,
            Scheme::Pfabric,
            Scheme::SfqCodel,
            Scheme::Xcp,
        ] {
            let r = run_cell(&spec(scheme));
            println!(
                "{load},{},{:.3},{:.3}",
                r.scheme,
                r.fairness,
                r.fairness - ft.fairness
            );
        }
    }
}
