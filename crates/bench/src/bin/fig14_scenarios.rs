//! Figure 14 — collective & adversarial scenarios across engines.
//!
//! Drives every scenario family (ring/tree allreduce, all-to-all,
//! bursty on/off, permutation shift, incast) through the scenario
//! runner against NED (serial), Gradient and Fastpass, and tabulates
//! per-run completion time, p99 FCT, the worst per-phase Jain fairness
//! index, and the peak raw over-allocation the engine asked for before
//! normalization (the Fig. 12 quantity; structurally zero for
//! Fastpass, whose timeslot allocation never over-allocates).
//!
//! The paper's story, extended to structured workloads: NED converges
//! to the proportionally fair allocation within a handful of 10 µs
//! ticks, so phase-barriered collectives finish at the fluid optimum,
//! while Fastpass trades allocator cheapness for coarser shares and
//! Gradient converges more slowly under churny admission edges.
//!
//! `--scenario S` restricts the table to one family; `--engine` is
//! ignored (the engine sweep *is* the table). `--full` doubles the
//! fabric and payload scale.

use flowtune::{AllocatorService, Engine, ScenarioOptions, TickLoop};
use flowtune_bench::Opts;
use flowtune_topo::{ClosConfig, TwoTierClos};
use flowtune_workload::ScenarioKind;

fn main() {
    let opts = Opts::parse();
    opts.require_in_process("fig14_scenarios");
    // Quick: the 16-server equivalence fabric. Full: 32 servers across
    // two blocks, with paper-scale payloads.
    let (fabric_cfg, servers, bytes) = if opts.quick {
        (ClosConfig::multicore(2, 2, 4), 16u32, 1u64 << 21)
    } else {
        (ClosConfig::multicore(2, 2, 8), 32u32, 1u64 << 24)
    };
    let fabric = TwoTierClos::build(fabric_cfg);
    let kinds: Vec<ScenarioKind> = match opts.scenario {
        Some(kind) => vec![kind],
        None => ScenarioKind::ALL.to_vec(),
    };
    let engines = [
        ("ned", Engine::Serial),
        ("gradient", Engine::Gradient),
        ("fastpass", Engine::Fastpass),
    ];
    println!("# Figure 14 — scenario completion, tail FCT and fairness by engine");
    println!("scenario,engine,phases,ticks,completion_us,p99_fct_us,min_jain,peak_overalloc_gbps");
    for kind in kinds {
        for (name, engine) in &engines {
            let driver = AllocatorService::builder()
                .fabric(&fabric)
                .config(opts.config())
                .engine(engine.clone())
                .build_driver()
                .expect("fabric is set and the engine is unsharded");
            let mut ticker = TickLoop::new(driver, opts.config().tick_interval_ps);
            let mut scenario = kind.build(servers, bytes);
            let report =
                flowtune::run_scenario(&mut ticker, scenario.as_mut(), &ScenarioOptions::default());
            let completion_us = report
                .max_phase_completion_ps()
                .map_or(f64::NAN, |ps| ps as f64 / 1e6);
            let p99_us = report.p99_fct_ps().map_or(f64::NAN, |ps| ps as f64 / 1e6);
            println!(
                "{},{name},{},{}{},{completion_us:.1},{p99_us:.1},{:.4},{:.2}",
                kind.name(),
                report.phases.len(),
                report.ticks,
                if report.truncated { " (truncated)" } else { "" },
                report.min_jain().unwrap_or(f64::NAN),
                report.peak_overallocation_gbps,
            );
        }
    }
}
