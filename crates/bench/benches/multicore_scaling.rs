//! Criterion: multicore allocator iteration latency vs worker-grid size
//! (the §6.1 scaling claim, as a microbenchmark), plus the serial engine
//! as the zero-communication baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowtune_alloc::{AllocConfig, MulticoreAllocator, SerialAllocator};
use flowtune_topo::{ClosConfig, FlowId, TwoTierClos};

fn spray(
    fabric: &TwoTierClos,
    n: usize,
    mut add: impl FnMut(FlowId, usize, usize, f64, &flowtune_topo::Path),
) {
    let servers = fabric.config().server_count();
    for f in 0..n {
        let src = (f * 7919) % servers;
        let mut dst = (f * 104_729 + 13) % servers;
        if dst == src {
            dst = (dst + 1) % servers;
        }
        let path = fabric.path(src, dst, FlowId(f as u64));
        add(FlowId(f as u64), src, dst, 1.0, &path);
    }
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("multicore_scaling");
    group.sample_size(10);
    let flows = 3072;
    for blocks in [1usize, 2, 4] {
        let fabric = TwoTierClos::build(ClosConfig::multicore(blocks, 4, 16));
        let mut serial = SerialAllocator::new(&fabric, AllocConfig::default());
        spray(&fabric, flows, |id, s, d, w, p| {
            serial.add_flow(id, s, d, w, p)
        });
        group.bench_with_input(BenchmarkId::new("serial", blocks), &blocks, |b, _| {
            b.iter(|| serial.iterate());
        });

        let mut parallel = MulticoreAllocator::new(&fabric, AllocConfig::default());
        spray(&fabric, flows, |id, s, d, w, p| {
            parallel.add_flow(id, s, d, w, p)
        });
        group.bench_with_input(BenchmarkId::new("parallel", blocks), &blocks, |b, _| {
            // Amortize thread spawn over 50 iterations per measurement.
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    total += parallel.run_iterations(50) / 50;
                }
                total
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
