//! Criterion: U-NORM vs F-NORM cost (§4 notes F-NORM "requires per-flow
//! work"; this quantifies it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowtune_num::normalize::{f_norm, u_norm};
use flowtune_num::{NumProblem, SolverState, Utility};
use flowtune_topo::{ClosConfig, FlowId, TwoTierClos};

fn instance(flows: usize) -> (NumProblem, Vec<f64>) {
    let fabric = TwoTierClos::build(ClosConfig::paper_eval());
    let servers = fabric.config().server_count();
    let caps: Vec<f64> = fabric
        .topology()
        .links()
        .iter()
        .map(|l| l.capacity_bps as f64 / 1e9)
        .collect();
    let mut p = NumProblem::new(caps);
    for f in 0..flows {
        let src = (f * 7919) % servers;
        let mut dst = (f * 104_729 + 13) % servers;
        if dst == src {
            dst = (dst + 1) % servers;
        }
        let path = fabric.path(src, dst, FlowId(f as u64));
        p.add_flow(path.links().to_vec(), Utility::log(1.0));
    }
    let mut state = SolverState::new(&p);
    let mut ned = flowtune_num::Ned::new(0.4);
    for _ in 0..20 {
        flowtune_num::Optimizer::iterate(&mut ned, &p, &mut state);
    }
    let rates = state.rates.clone();
    (p, rates)
}

fn bench_norms(c: &mut Criterion) {
    let mut group = c.benchmark_group("normalization");
    for flows in [1024usize, 8192] {
        let (p, rates) = instance(flows);
        group.bench_with_input(BenchmarkId::new("f_norm", flows), &p, |b, p| {
            b.iter(|| f_norm(p, &rates));
        });
        group.bench_with_input(BenchmarkId::new("u_norm", flows), &p, |b, p| {
            b.iter(|| u_norm(p, &rates));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_norms);
criterion_main!(benches);
