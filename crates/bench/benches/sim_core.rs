//! Criterion: simulator event throughput — how much loaded-datacenter
//! time the simulator chews per wall second, per scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowtune_sim::{Scheme, SimConfig, Simulation, MS};
use flowtune_topo::ClosConfig;
use flowtune_workload::{TraceConfig, TraceGenerator, Workload};

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_core");
    group.sample_size(10);
    for scheme in [Scheme::Flowtune, Scheme::Dctcp, Scheme::Pfabric] {
        group.bench_with_input(
            BenchmarkId::new("2ms_32srv_load0.5", scheme.name()),
            &scheme,
            |b, &scheme| {
                b.iter(|| {
                    let mut cfg = SimConfig::paper(scheme);
                    cfg.clos = ClosConfig {
                        racks: 2,
                        servers_per_rack: 16,
                        racks_per_block: 2,
                        ..ClosConfig::paper_eval()
                    };
                    let mut sim = Simulation::new(cfg);
                    let mut gen = TraceGenerator::new(TraceConfig {
                        workload: Workload::Web,
                        load: 0.5,
                        servers: 32,
                        server_link_bps: 10_000_000_000,
                        seed: 1,
                        affinity: None,
                    });
                    for e in gen.events_until(2 * MS) {
                        sim.add_flow(e.at_ps, e.src as u16, e.dst as u16, e.bytes);
                    }
                    sim.run_until(4 * MS);
                    sim.metrics().delivered_bytes
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
