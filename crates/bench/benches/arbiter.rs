//! Criterion: Fastpass-style arbiter slot throughput — the per-packet
//! work the §6.1 comparison charges Fastpass for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flowtune_fastpass::Arbiter;

fn bench_arbiter(c: &mut Criterion) {
    let mut group = c.benchmark_group("arbiter");
    for endpoints in [64usize, 256, 1024] {
        group.throughput(Throughput::Elements(endpoints as u64));
        group.bench_with_input(
            BenchmarkId::new("allocate_slot", endpoints),
            &endpoints,
            |b, &n| {
                let mut arb = Arbiter::new(n);
                b.iter(|| {
                    // Keep demand topped up so every slot does full work.
                    if arb.backlog() < n as u64 {
                        for s in 0..n as u16 {
                            arb.add_demand(s, ((s as usize + n / 2) % n) as u16, 64);
                        }
                    }
                    arb.allocate_slot()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_arbiter);
criterion_main!(benches);
