//! Criterion: Fastpass-style arbiter slot throughput — the per-packet
//! work the §6.1 comparison charges Fastpass for — plus the allocator
//! service's steady-state tick (the other side of the comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flowtune::{AllocatorService, BoxTickDriver, Engine, FlowtuneConfig};
use flowtune_fastpass::Arbiter;
use flowtune_proto::{Message, Token};
use flowtune_topo::{ClosConfig, TwoTierClos};

fn bench_arbiter(c: &mut Criterion) {
    let mut group = c.benchmark_group("arbiter");
    for endpoints in [64usize, 256, 1024] {
        group.throughput(Throughput::Elements(endpoints as u64));
        group.bench_with_input(
            BenchmarkId::new("allocate_slot", endpoints),
            &endpoints,
            |b, &n| {
                let mut arb = Arbiter::new(n);
                b.iter(|| {
                    // Keep demand topped up so every slot does full work.
                    if arb.backlog() < n as u64 {
                        for s in 0..n as u16 {
                            arb.add_demand(s, ((s as usize + n / 2) % n) as u16, 64);
                        }
                    }
                    arb.allocate_slot()
                });
            },
        );
    }
    group.finish();
}

/// Guard for the per-tick registry walk: the service's steady-state tick
/// is `O(n)` over a sorted `BTreeMap` (it used to collect-and-sort every
/// token, `O(n log n)` per 10 µs tick). A regression here shows up as a
/// superlinear jump between the flow counts.
fn bench_service_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_tick");
    group.sample_size(10);
    let fabric = TwoTierClos::build(ClosConfig::paper_eval());
    let servers = fabric.config().server_count();
    for flows in [512usize, 4096] {
        let mut svc = AllocatorService::builder()
            .fabric(&fabric)
            .config(FlowtuneConfig::default())
            .engine(Engine::Serial)
            .build()
            .expect("fabric is set");
        for f in 0..flows {
            let src = (f * 7919) % servers;
            let mut dst = (f * 104_729 + 13) % servers;
            if dst == src {
                dst = (dst + 1) % servers;
            }
            let spine = fabric.ecmp_spine(src, dst, flowtune_topo::FlowId(f as u64));
            svc.on_message(Message::FlowletStart {
                token: Token::new(f as u32),
                src: src as u16,
                dst: dst as u16,
                size_hint: 1_000_000,
                weight_q8: 256,
                spine: spine as u8,
            })
            .expect("unique tokens");
        }
        // Converge first so the bench measures the suppressed-steady-state
        // walk, not transient update encoding.
        for _ in 0..200 {
            svc.tick();
        }
        group.throughput(Throughput::Elements(flows as u64));
        group.bench_with_input(BenchmarkId::new("steady_state", flows), &flows, |b, _| {
            b.iter(|| svc.tick())
        });
    }
    group.finish();
}

/// Loads `flows` pseudo-random flowlets into a driver and converges it.
fn loaded_driver(
    fabric: &TwoTierClos,
    engine: Engine,
    cfg: FlowtuneConfig,
    flows: usize,
) -> BoxTickDriver {
    let servers = fabric.config().server_count();
    let mut svc = AllocatorService::builder()
        .fabric(fabric)
        .config(cfg)
        .engine(engine)
        .build_driver()
        .expect("fabric is set");
    for f in 0..flows {
        let src = (f * 7919) % servers;
        let mut dst = (f * 104_729 + 13) % servers;
        if dst == src {
            dst = (dst + 1) % servers;
        }
        let spine = fabric.ecmp_spine(src, dst, flowtune_topo::FlowId(f as u64));
        svc.on_message(Message::FlowletStart {
            token: Token::new(f as u32),
            src: src as u16,
            dst: dst as u16,
            size_hint: 1_000_000,
            weight_q8: 256,
            spine: spine as u8,
        })
        .expect("unique tokens");
    }
    for _ in 0..200 {
        svc.tick();
    }
    svc
}

/// Per-engine steady-state tick latency through the service API, one row
/// per engine so every engine's tick cost is tracked in one table. The
/// multicore row is the §5 pool-backed engine — it must stay no worse
/// than the old scoped-spawn-per-call numbers (the pool exists to remove
/// spawn/join from this very path). The sharded rows run the real
/// `ShardedService` (2 shards over the fabric's 2 blocks) including its
/// k-way update merge; the `sharded2x1` row additionally pays a full
/// link-state exchange (sparse export + dual consensus) every tick — the
/// worst-case exchange overhead on the tick path. `sharded4seq` vs
/// `sharded4par` pins the concurrent-tick win: identical 4-shard work
/// ticked sequentially vs on per-shard OS threads (the parallel row only
/// beats the sequential one on multi-core hosts; the `service_tick`
/// *binary* gates that ratio in CI).
fn bench_service_tick_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_tick");
    group.sample_size(10);
    // Four blocks of two racks of 16: a fabric the multicore grid
    // (B² = 16 workers) and the 2- and 4-shard partitions all map onto
    // naturally.
    let fabric = TwoTierClos::build(ClosConfig::multicore(4, 2, 16));
    let flows = 512usize;
    for (label, engine, exchange_every, parallel) in [
        ("serial", Engine::Serial, 0, None),
        ("multicore", Engine::Multicore { workers: 0 }, 0, None),
        ("fastpass", Engine::Fastpass, 0, None),
        ("gradient", Engine::Gradient, 0, None),
        ("sharded2", Engine::Serial.sharded(2), 0, None),
        ("sharded2x1", Engine::Serial.sharded(2), 1, None),
        ("sharded4seq", Engine::Serial.sharded(4), 1, Some(false)),
        ("sharded4par", Engine::Serial.sharded(4), 1, Some(true)),
    ] {
        let cfg = FlowtuneConfig {
            exchange_every,
            parallel_shards: parallel.unwrap_or(FlowtuneConfig::default().parallel_shards),
            ..FlowtuneConfig::default()
        };
        let mut svc = loaded_driver(&fabric, engine, cfg, flows);
        group.throughput(Throughput::Elements(flows as u64));
        group.bench_with_input(BenchmarkId::new(label, flows), &flows, |b, _| {
            b.iter(|| svc.tick())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_arbiter,
    bench_service_tick,
    bench_service_tick_engines
);
criterion_main!(benches);
