//! Criterion: per-iteration cost of the NUM optimizers vs instance size.
//!
//! NED's pitch is that the exact diagonal is "computed quickly enough on
//! CPUs for sizeable topologies" — this bench quantifies the per-iteration
//! cost and compares the baselines at equal instance sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flowtune_num::{Fgm, Gradient, Ned, NedRt, NumProblem, Optimizer, SolverState, Utility};
use flowtune_topo::{ClosConfig, FlowId, TwoTierClos};

fn instance(flows: usize) -> NumProblem {
    let fabric = TwoTierClos::build(ClosConfig::paper_eval());
    let servers = fabric.config().server_count();
    let caps: Vec<f64> = fabric
        .topology()
        .links()
        .iter()
        .map(|l| l.capacity_bps as f64 / 1e9)
        .collect();
    let mut p = NumProblem::new(caps);
    for f in 0..flows {
        let src = (f * 7919) % servers;
        let mut dst = (f * 104_729 + 13) % servers;
        if dst == src {
            dst = (dst + 1) % servers;
        }
        let path = fabric.path(src, dst, FlowId(f as u64));
        p.add_flow(path.links().to_vec(), Utility::log(1.0));
    }
    p
}

fn bench_optimizers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ned_iteration");
    for flows in [512usize, 4096, 16384] {
        let p = instance(flows);
        group.throughput(Throughput::Elements(flows as u64));
        let mut run = |name: &str, opt: &mut dyn Optimizer| {
            let mut state = SolverState::new(&p);
            group.bench_with_input(BenchmarkId::new(name, flows), &p, |b, p| {
                b.iter(|| opt.iterate(p, &mut state));
            });
        };
        run("NED", &mut Ned::new(0.4));
        run("NED-RT", &mut NedRt::new(0.4));
        run("Gradient", &mut Gradient::default());
        run("FGM", &mut Fgm::new());
    }
    group.finish();
}

criterion_group!(benches, bench_optimizers);
criterion_main!(benches);
