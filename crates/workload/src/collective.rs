//! Collective-communication phase generators: ring allreduce, tree
//! allreduce, and all-to-all.
//!
//! All three are barrier-chained ([`Admission::AfterPrevious`]): a phase's
//! flows enter the fabric only once the previous phase's flows have all
//! completed, the dependency structure of a synchronous collective step.
//! The invariant every generator maintains — and the property tests pin —
//! is *byte conservation per participant*: summed over all phases, each
//! participant sends exactly as many bytes as it receives, because an
//! allreduce leaves every rank holding the same reduced buffer.
//!
//! [`Admission::AfterPrevious`]: crate::scenario::Admission::AfterPrevious

use crate::scenario::{Phase, Scenario, ScenarioFlow};

/// Ring allreduce over `n` participants: `n−1` reduce-scatter phases then
/// `n−1` allgather phases, each a full ring permutation (`i → i+1`) of one
/// `bytes/n` chunk per participant.
#[derive(Debug, Clone)]
pub struct RingAllreduce {
    participants: Vec<u32>,
    chunk: u64,
    next: usize,
}

impl RingAllreduce {
    /// Builds a ring allreduce of `bytes_per_participant` over
    /// `participants` (ring order is the vector order).
    ///
    /// # Panics
    /// Panics with fewer than 2 participants.
    pub fn new(participants: Vec<u32>, bytes_per_participant: u64) -> Self {
        assert!(
            participants.len() >= 2,
            "a ring needs at least 2 participants"
        );
        let n = participants.len() as u64;
        RingAllreduce {
            chunk: (bytes_per_participant / n).max(1),
            participants,
            next: 0,
        }
    }

    /// Total number of phases: `2(n−1)`.
    pub fn phase_count(&self) -> usize {
        2 * (self.participants.len() - 1)
    }

    /// Chunk size each participant ships per phase (`bytes/n`, floored).
    pub fn chunk_bytes(&self) -> u64 {
        self.chunk
    }
}

impl Scenario for RingAllreduce {
    fn name(&self) -> &'static str {
        "allreduce:ring"
    }

    fn next_phase(&mut self) -> Option<Phase> {
        if self.next >= self.phase_count() {
            return None;
        }
        let n = self.participants.len();
        let step = self.next;
        self.next += 1;
        let label = if step < n - 1 {
            format!("reduce-scatter {step}")
        } else {
            format!("allgather {}", step - (n - 1))
        };
        let flows = (0..n)
            .map(|i| ScenarioFlow {
                src: self.participants[i],
                dst: self.participants[(i + 1) % n],
                bytes: self.chunk,
            })
            .collect();
        Some(Phase::barrier(label, flows))
    }
}

/// Tree allreduce over a binary tree laid out by index (`parent(k) =
/// (k−1)/2`): reduce phases walk the deepest level up to the root, then
/// broadcast phases mirror back down. Every participant — root included —
/// sends exactly as many bytes as it receives.
#[derive(Debug, Clone)]
pub struct TreeAllreduce {
    phases: Vec<Phase>,
    next: usize,
}

/// Depth of index `k` in the implicit binary tree (root is depth 0).
fn tree_depth(k: usize) -> u32 {
    (k as u64 + 1).ilog2()
}

impl TreeAllreduce {
    /// Builds a tree allreduce of `bytes_per_participant` over
    /// `participants` (tree layout is the vector order).
    ///
    /// # Panics
    /// Panics with fewer than 2 participants.
    pub fn new(participants: Vec<u32>, bytes_per_participant: u64) -> Self {
        assert!(
            participants.len() >= 2,
            "a tree needs at least 2 participants"
        );
        let n = participants.len();
        let depth = tree_depth(n - 1);
        let level = |d: u32| (0..n).filter(move |&k| k > 0 && tree_depth(k) == d);
        let mut phases = Vec::with_capacity(2 * depth as usize);
        for d in (1..=depth).rev() {
            let flows = level(d)
                .map(|k| ScenarioFlow {
                    src: participants[k],
                    dst: participants[(k - 1) / 2],
                    bytes: bytes_per_participant,
                })
                .collect();
            phases.push(Phase::barrier(format!("reduce depth {d}"), flows));
        }
        for d in 1..=depth {
            let flows = level(d)
                .map(|k| ScenarioFlow {
                    src: participants[(k - 1) / 2],
                    dst: participants[k],
                    bytes: bytes_per_participant,
                })
                .collect();
            phases.push(Phase::barrier(format!("broadcast depth {d}"), flows));
        }
        TreeAllreduce { phases, next: 0 }
    }

    /// Total number of phases: `2·depth`.
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }
}

impl Scenario for TreeAllreduce {
    fn name(&self) -> &'static str {
        "allreduce:tree"
    }

    fn next_phase(&mut self) -> Option<Phase> {
        let p = self.phases.get(self.next).cloned();
        self.next += p.is_some() as usize;
        p
    }
}

/// All-to-all over `n` participants: `n−1` barrier phases, phase `k`
/// the shifted permutation `i → i+k`, each carrying a `bytes/(n−1)` slice.
#[derive(Debug, Clone)]
pub struct AllToAll {
    participants: Vec<u32>,
    chunk: u64,
    next: usize,
}

impl AllToAll {
    /// Builds an all-to-all of `bytes_per_participant` over `participants`.
    ///
    /// # Panics
    /// Panics with fewer than 2 participants.
    pub fn new(participants: Vec<u32>, bytes_per_participant: u64) -> Self {
        assert!(
            participants.len() >= 2,
            "all-to-all needs at least 2 participants"
        );
        let n = participants.len() as u64;
        AllToAll {
            chunk: (bytes_per_participant / (n - 1)).max(1),
            participants,
            next: 0,
        }
    }

    /// Total number of phases: `n−1`.
    pub fn phase_count(&self) -> usize {
        self.participants.len() - 1
    }
}

impl Scenario for AllToAll {
    fn name(&self) -> &'static str {
        "alltoall"
    }

    fn next_phase(&mut self) -> Option<Phase> {
        if self.next >= self.phase_count() {
            return None;
        }
        let n = self.participants.len();
        let shift = self.next + 1;
        self.next += 1;
        let flows = (0..n)
            .map(|i| ScenarioFlow {
                src: self.participants[i],
                dst: self.participants[(i + shift) % n],
                bytes: self.chunk,
            })
            .collect();
        Some(Phase::barrier(format!("shift {shift}"), flows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Drains a scenario, returning (sent, received) byte totals per server.
    fn totals(s: &mut dyn Scenario) -> HashMap<u32, (u64, u64)> {
        let mut t: HashMap<u32, (u64, u64)> = HashMap::new();
        while let Some(p) = s.next_phase() {
            for f in &p.flows {
                t.entry(f.src).or_default().0 += f.bytes;
                t.entry(f.dst).or_default().1 += f.bytes;
            }
        }
        t
    }

    #[test]
    fn ring_conserves_bytes_per_participant() {
        let mut s = RingAllreduce::new((0..7).collect(), 700_000);
        assert_eq!(s.phase_count(), 12);
        for (server, (sent, recv)) in totals(&mut s) {
            assert_eq!(sent, recv, "server {server}");
            assert!(sent > 0, "server {server} idle");
        }
    }

    #[test]
    fn tree_conserves_bytes_per_participant_including_the_root() {
        let mut s = TreeAllreduce::new((0..10).collect(), 64_000);
        for (server, (sent, recv)) in totals(&mut s) {
            assert_eq!(sent, recv, "server {server}");
        }
    }

    #[test]
    fn tree_phases_mirror_reduce_then_broadcast() {
        let mut s = TreeAllreduce::new((0..8).collect(), 1_000);
        let labels: Vec<String> = std::iter::from_fn(|| s.next_phase().map(|p| p.label)).collect();
        assert_eq!(
            labels,
            [
                "reduce depth 3",
                "reduce depth 2",
                "reduce depth 1",
                "broadcast depth 1",
                "broadcast depth 2",
                "broadcast depth 3",
            ]
        );
    }

    #[test]
    fn alltoall_every_phase_is_a_permutation_and_every_pair_meets_once() {
        let n = 6u32;
        let mut s = AllToAll::new((0..n).collect(), 5_000);
        let mut pairs = std::collections::HashSet::new();
        while let Some(p) = s.next_phase() {
            let srcs: std::collections::HashSet<u32> = p.flows.iter().map(|f| f.src).collect();
            let dsts: std::collections::HashSet<u32> = p.flows.iter().map(|f| f.dst).collect();
            assert_eq!(srcs.len(), n as usize);
            assert_eq!(dsts.len(), n as usize);
            for f in &p.flows {
                assert!(pairs.insert((f.src, f.dst)), "pair repeated");
            }
        }
        assert_eq!(pairs.len(), (n * (n - 1)) as usize);
    }
}
