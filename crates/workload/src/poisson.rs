//! Poisson flowlet arrivals and the paper's load calibration.

use rand::{Rng, RngExt};

/// A Poisson arrival process over the whole cluster.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    /// Aggregate arrival rate, flowlets per second.
    rate_per_sec: f64,
}

impl PoissonArrivals {
    /// Creates a process with an explicit aggregate rate (flowlets/s).
    ///
    /// # Panics
    /// Panics unless the rate is positive and finite.
    pub fn with_rate(rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "arrival rate must be positive"
        );
        Self { rate_per_sec }
    }

    /// The paper's calibration (§6.2): "100% load is when the rate equals
    /// server link capacity divided by the mean flow size", summed over
    /// `servers` senders.
    pub fn for_load(load: f64, servers: usize, server_link_bps: u64, mean_flow_bytes: f64) -> Self {
        assert!(load > 0.0 && load.is_finite(), "load must be positive");
        assert!(servers > 0 && mean_flow_bytes > 0.0);
        let per_server = load * server_link_bps as f64 / (8.0 * mean_flow_bytes);
        Self::with_rate(per_server * servers as f64)
    }

    /// Aggregate rate in flowlets per second.
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }

    /// Samples the next inter-arrival gap, in picoseconds.
    pub fn next_gap_ps<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // Exponential via inverse transform; 1−u avoids ln(0).
        let u: f64 = rng.random();
        let secs = -(1.0 - u).ln() / self.rate_per_sec;
        (secs * 1e12) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn load_calibration_matches_definition() {
        // 10 Gbit/s links, 1.25 MB mean ⇒ 1000 flows/s/server at 100%.
        let p = PoissonArrivals::for_load(1.0, 1, 10_000_000_000, 1_250_000.0);
        assert!((p.rate_per_sec() - 1000.0).abs() < 1e-9);
        // Half load, 144 servers.
        let p = PoissonArrivals::for_load(0.5, 144, 10_000_000_000, 1_250_000.0);
        assert!((p.rate_per_sec() - 72_000.0).abs() < 1e-6);
    }

    #[test]
    fn gaps_average_to_inverse_rate() {
        let p = PoissonArrivals::with_rate(10_000.0);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let total: u64 = (0..n).map(|_| p.next_gap_ps(&mut rng)).sum();
        let mean_ps = total as f64 / n as f64;
        let expect = 1e12 / 10_000.0; // 100 µs
        assert!((mean_ps - expect).abs() / expect < 0.02, "{mean_ps}");
    }

    #[test]
    fn gaps_are_nonnegative_and_varied() {
        let p = PoissonArrivals::with_rate(1e6);
        let mut rng = StdRng::seed_from_u64(1);
        let gaps: Vec<u64> = (0..100).map(|_| p.next_gap_ps(&mut rng)).collect();
        assert!(gaps.iter().any(|&g| g > 0));
        let first = gaps[0];
        assert!(gaps.iter().any(|&g| g != first), "not constant");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = PoissonArrivals::with_rate(0.0);
    }
}
