//! Phase-structured scenarios: the `Scenario` trait and its vocabulary.
//!
//! A scenario is a sequence of [`Phase`]s, each a batch of flows admitted
//! together. Admission is either barrier-style ([`Admission::AfterPrevious`]:
//! the phase starts only once every flow of the previously admitted phase
//! has completed — the collective-communication dependency) or timed
//! ([`Admission::AtTick`]: the phase starts at an absolute tick regardless
//! of outstanding work — bursty and churn patterns). A phase may also *cut*
//! whatever is still running when it is admitted (`ends_previous`), which
//! models permutation rotation and on/off silence windows.
//!
//! Generators live in [`crate::collective`] (ring/tree allreduce,
//! all-to-all) and [`crate::adversarial`] (bursty on/off, permutation
//! shift, incast); [`ScenarioKind`] names the families the bench CLI
//! exposes and builds them with canonical parameters.

use crate::adversarial::{BurstyOnOff, Incast, PermutationShift};
use crate::collective::{AllToAll, RingAllreduce, TreeAllreduce};

/// One flow within a scenario phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioFlow {
    /// Source server index.
    pub src: u32,
    /// Destination server index.
    pub dst: u32,
    /// Flowlet size in bytes.
    pub bytes: u64,
}

/// When a phase's flows become admissible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admit once every flow of the previously admitted phase has
    /// completed (the collective phase barrier). The first phase of a
    /// scenario is admitted immediately.
    AfterPrevious,
    /// Admit at an absolute tick index, regardless of outstanding flows.
    AtTick(u64),
}

/// A batch of flows admitted together, plus its admission rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Human-readable label (`"reduce-scatter 3"`, `"burst 1"`, …).
    pub label: String,
    /// Barrier or timed admission.
    pub admission: Admission,
    /// Force-end ("cut") still-active flows from earlier phases when this
    /// phase is admitted. Models permutation rotation and off windows.
    pub ends_previous: bool,
    /// The flows this phase admits. May be empty (a pure cut marker).
    pub flows: Vec<ScenarioFlow>,
}

impl Phase {
    /// A barrier phase: admitted when the previous phase completes.
    pub fn barrier(label: String, flows: Vec<ScenarioFlow>) -> Self {
        Phase {
            label,
            admission: Admission::AfterPrevious,
            ends_previous: false,
            flows,
        }
    }

    /// A timed phase admitted at `tick`, leaving earlier flows running.
    pub fn at_tick(tick: u64, label: String, flows: Vec<ScenarioFlow>) -> Self {
        Phase {
            label,
            admission: Admission::AtTick(tick),
            ends_previous: false,
            flows,
        }
    }

    /// A timed phase admitted at `tick` that cuts earlier active flows.
    pub fn cut_at_tick(tick: u64, label: String, flows: Vec<ScenarioFlow>) -> Self {
        Phase {
            label,
            admission: Admission::AtTick(tick),
            ends_previous: true,
            flows,
        }
    }

    /// Total bytes this phase injects.
    pub fn bytes(&self) -> u64 {
        self.flows.iter().map(|f| f.bytes).sum()
    }
}

/// A phase-structured workload. Implementations are single-pass
/// iterators: [`Scenario::next_phase`] yields phases in admission order
/// and returns `None` when the scenario is exhausted.
pub trait Scenario {
    /// The family name (matches [`ScenarioKind::name`] for built-ins).
    fn name(&self) -> &'static str;

    /// The next phase, or `None` once the scenario is exhausted.
    fn next_phase(&mut self) -> Option<Phase>;
}

/// The scenario families the bench CLI exposes via `--scenario`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Ring allreduce: `2(n−1)` barrier phases of neighbor chunks.
    AllreduceRing,
    /// Tree allreduce: reduce up a binary tree, then broadcast down.
    AllreduceTree,
    /// All-to-all: `n−1` barrier phases of shifted permutations.
    AllToAll,
    /// Bursty on/off sources: timed bursts separated by silence.
    Burst,
    /// Permutation shift: the permutation rotates every K ticks.
    PermShift,
    /// N:1 incast fan-in onto a single receiver.
    Incast,
}

impl ScenarioKind {
    /// Every built-in family, in CLI listing order.
    pub const ALL: [ScenarioKind; 6] = [
        ScenarioKind::AllreduceRing,
        ScenarioKind::AllreduceTree,
        ScenarioKind::AllToAll,
        ScenarioKind::Burst,
        ScenarioKind::PermShift,
        ScenarioKind::Incast,
    ];

    /// The CLI spelling of this family.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::AllreduceRing => "allreduce:ring",
            ScenarioKind::AllreduceTree => "allreduce:tree",
            ScenarioKind::AllToAll => "alltoall",
            ScenarioKind::Burst => "burst",
            ScenarioKind::PermShift => "permshift",
            ScenarioKind::Incast => "incast",
        }
    }

    /// Parses a CLI spelling.
    ///
    /// # Errors
    /// Returns a message listing the valid spellings when `s` matches none.
    pub fn parse(s: &str) -> Result<Self, String> {
        Self::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = Self::ALL.iter().map(|k| k.name()).collect();
                format!(
                    "unknown scenario `{s}` (expected one of: {})",
                    names.join(", ")
                )
            })
    }

    /// Builds this family with canonical parameters over `servers`
    /// endpoints, sizing per-participant payloads at `bytes`.
    ///
    /// # Panics
    /// Panics if `servers < 4` (every family needs a few endpoints) or
    /// `bytes == 0`.
    pub fn build(self, servers: u32, bytes: u64) -> Box<dyn Scenario> {
        assert!(servers >= 4, "scenarios need at least 4 servers");
        assert!(bytes > 0, "scenarios need a nonzero payload");
        let all: Vec<u32> = (0..servers).collect();
        match self {
            ScenarioKind::AllreduceRing => Box::new(RingAllreduce::new(all, bytes)),
            ScenarioKind::AllreduceTree => Box::new(TreeAllreduce::new(all, bytes)),
            ScenarioKind::AllToAll => Box::new(AllToAll::new(all, bytes)),
            ScenarioKind::Burst => Box::new(BurstyOnOff::new(servers, bytes, 60, 60, 3)),
            ScenarioKind::PermShift => Box::new(PermutationShift::new(servers, bytes, 200, 4, 0)),
            ScenarioKind::Incast => {
                Box::new(Incast::new((0..servers / 2).collect(), servers - 1, bytes))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_parses_its_own_name() {
        for kind in ScenarioKind::ALL {
            assert_eq!(ScenarioKind::parse(kind.name()), Ok(kind));
        }
    }

    #[test]
    fn parse_rejects_unknown_names_and_lists_the_valid_ones() {
        let err = ScenarioKind::parse("allreduce").unwrap_err();
        assert!(err.contains("allreduce:ring"), "{err}");
        assert!(err.contains("permshift"), "{err}");
    }

    #[test]
    fn every_kind_builds_and_yields_at_least_one_nonempty_phase() {
        for kind in ScenarioKind::ALL {
            let mut s = kind.build(16, 1_000_000);
            assert_eq!(s.name(), kind.name());
            let mut injected = 0u64;
            let mut phases = 0usize;
            while let Some(p) = s.next_phase() {
                phases += 1;
                injected += p.bytes();
                assert!(phases < 10_000, "{}: runaway phase stream", kind.name());
            }
            assert!(phases >= 1, "{}: no phases", kind.name());
            assert!(injected > 0, "{}: no bytes", kind.name());
        }
    }

    #[test]
    fn built_scenarios_never_emit_self_flows_or_out_of_range_endpoints() {
        for kind in ScenarioKind::ALL {
            let mut s = kind.build(8, 64_000);
            while let Some(p) = s.next_phase() {
                for f in &p.flows {
                    assert_ne!(f.src, f.dst, "{}: self flow in {}", kind.name(), p.label);
                    assert!(
                        f.src < 8 && f.dst < 8,
                        "{}: endpoint out of range",
                        kind.name()
                    );
                    assert!(f.bytes > 0, "{}: empty flow", kind.name());
                }
            }
        }
    }
}
