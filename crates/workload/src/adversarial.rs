//! Adversarial phase generators: bursty on/off sources, permutation
//! shift, and N:1 incast.
//!
//! Unlike the collectives, these are mostly *timed*
//! ([`Admission::AtTick`]): the point is to stress the allocator's
//! reaction latency, not to respect a dependency order. Burst off-windows
//! and permutation rotations *cut* still-running flows (`ends_previous`),
//! so the allocator sees abrupt arrival and departure edges.
//!
//! [`Admission::AtTick`]: crate::scenario::Admission::AtTick

use crate::scenario::{Phase, Scenario, ScenarioFlow};

/// Bursty on/off sources: the lower half of the fabric sends to the upper
/// half for `on_ticks`, goes silent for `off_ticks`, repeated `bursts`
/// times. Each burst emits two phases: a timed admission with the flows,
/// then an empty cut phase that force-ends whatever survived the window.
#[derive(Debug, Clone)]
pub struct BurstyOnOff {
    servers: u32,
    bytes: u64,
    on_ticks: u64,
    off_ticks: u64,
    bursts: u64,
    emitted: u64,
}

impl BurstyOnOff {
    /// Builds `bursts` on/off cycles over `servers` endpoints, each source
    /// `s < servers/2` sending `bytes` to `s + servers/2`.
    ///
    /// # Panics
    /// Panics if `servers < 2`, either window is zero ticks, or
    /// `bursts == 0`.
    pub fn new(servers: u32, bytes: u64, on_ticks: u64, off_ticks: u64, bursts: u64) -> Self {
        assert!(servers >= 2, "on/off needs at least one src/dst pair");
        assert!(on_ticks > 0 && off_ticks > 0, "windows must be nonzero");
        assert!(bursts > 0, "need at least one burst");
        BurstyOnOff {
            servers,
            bytes,
            on_ticks,
            off_ticks,
            bursts,
            emitted: 0,
        }
    }

    /// The configured duty cycle, `on / (on + off)`.
    pub fn duty_cycle(&self) -> f64 {
        self.on_ticks as f64 / (self.on_ticks + self.off_ticks) as f64
    }

    /// Ticks from one burst start to the next.
    pub fn period_ticks(&self) -> u64 {
        self.on_ticks + self.off_ticks
    }
}

impl Scenario for BurstyOnOff {
    fn name(&self) -> &'static str {
        "burst"
    }

    fn next_phase(&mut self) -> Option<Phase> {
        let burst = self.emitted / 2;
        if burst >= self.bursts {
            return None;
        }
        let start = burst * self.period_ticks();
        let phase = if self.emitted.is_multiple_of(2) {
            let half = self.servers / 2;
            let flows = (0..half)
                .map(|s| ScenarioFlow {
                    src: s,
                    dst: s + half,
                    bytes: self.bytes,
                })
                .collect();
            Phase::at_tick(start, format!("burst {burst}"), flows)
        } else {
            Phase::cut_at_tick(start + self.on_ticks, format!("off {burst}"), Vec::new())
        };
        self.emitted += 1;
        Some(phase)
    }
}

/// Permutation shift: every server sends to `(i + shift) % servers`, and
/// the shift rotates every `rotate_every` ticks — each rotation cuts the
/// previous permutation's flows, an adversarial churn pattern for the
/// allocator's dirty-set machinery.
#[derive(Debug, Clone)]
pub struct PermutationShift {
    servers: u32,
    bytes: u64,
    rotate_every: u64,
    phases: u64,
    base_shift: u32,
    next: u64,
}

impl PermutationShift {
    /// Builds `phases` rotations over `servers` endpoints, rotating every
    /// `rotate_every` ticks starting from shift `1 + base_shift mod (n−1)`.
    ///
    /// # Panics
    /// Panics if `servers < 2`, `rotate_every == 0`, or `phases == 0`.
    pub fn new(servers: u32, bytes: u64, rotate_every: u64, phases: u64, base_shift: u32) -> Self {
        assert!(servers >= 2, "a permutation needs at least 2 servers");
        assert!(rotate_every > 0, "rotation period must be nonzero");
        assert!(phases > 0, "need at least one permutation phase");
        PermutationShift {
            servers,
            bytes,
            rotate_every,
            phases,
            base_shift,
            next: 0,
        }
    }

    /// The shift used by phase `p` — always in `1..servers`, never the
    /// identity, so no flow is ever a self-loop.
    pub fn shift_of(&self, p: u64) -> u32 {
        1 + ((self.base_shift as u64 + p) % (self.servers as u64 - 1)) as u32
    }

    /// Ticks between rotations.
    pub fn rotate_every(&self) -> u64 {
        self.rotate_every
    }
}

impl Scenario for PermutationShift {
    fn name(&self) -> &'static str {
        "permshift"
    }

    fn next_phase(&mut self) -> Option<Phase> {
        let p = self.next;
        if p >= self.phases {
            return None;
        }
        self.next += 1;
        let shift = self.shift_of(p);
        let flows = (0..self.servers)
            .map(|i| ScenarioFlow {
                src: i,
                dst: (i + shift) % self.servers,
                bytes: self.bytes,
            })
            .collect();
        let mut phase =
            Phase::cut_at_tick(p * self.rotate_every, format!("perm shift {shift}"), flows);
        phase.ends_previous = p > 0;
        Some(phase)
    }
}

/// N:1 incast: every source sends `bytes` to one receiver simultaneously,
/// a single barrier phase. The fan-in degree is `sources.len()`.
#[derive(Debug, Clone)]
pub struct Incast {
    sources: Vec<u32>,
    receiver: u32,
    bytes: u64,
    done: bool,
}

impl Incast {
    /// Builds an incast of `sources.len()` senders onto `receiver`.
    ///
    /// # Panics
    /// Panics if `sources` is empty or contains `receiver`.
    pub fn new(sources: Vec<u32>, receiver: u32, bytes: u64) -> Self {
        assert!(!sources.is_empty(), "incast needs at least one source");
        assert!(
            !sources.contains(&receiver),
            "the receiver cannot also be a source"
        );
        Incast {
            sources,
            receiver,
            bytes,
            done: false,
        }
    }

    /// The fan-in degree.
    pub fn fan_in(&self) -> usize {
        self.sources.len()
    }

    /// Bytes each source sends.
    pub fn bytes_per_source(&self) -> u64 {
        self.bytes
    }
}

impl Scenario for Incast {
    fn name(&self) -> &'static str {
        "incast"
    }

    fn next_phase(&mut self) -> Option<Phase> {
        if self.done {
            return None;
        }
        self.done = true;
        let flows = self
            .sources
            .iter()
            .map(|&s| ScenarioFlow {
                src: s,
                dst: self.receiver,
                bytes: self.bytes,
            })
            .collect();
        Some(Phase::barrier(format!("incast {}:1", self.fan_in()), flows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Admission;

    #[test]
    fn bursts_alternate_admission_and_cut_at_the_configured_duty_cycle() {
        let mut s = BurstyOnOff::new(8, 10_000, 30, 70, 2);
        assert!((s.duty_cycle() - 0.3).abs() < 1e-12);
        let phases: Vec<Phase> = std::iter::from_fn(|| s.next_phase()).collect();
        assert_eq!(phases.len(), 4);
        assert_eq!(phases[0].admission, Admission::AtTick(0));
        assert!(!phases[0].ends_previous && phases[0].flows.len() == 4);
        assert_eq!(phases[1].admission, Admission::AtTick(30));
        assert!(phases[1].ends_previous && phases[1].flows.is_empty());
        assert_eq!(phases[2].admission, Admission::AtTick(100));
        assert_eq!(phases[3].admission, Admission::AtTick(130));
    }

    #[test]
    fn permshift_rotates_the_shift_and_cuts_from_the_second_phase_on() {
        let mut s = PermutationShift::new(6, 1_000, 50, 7, 3);
        let phases: Vec<Phase> = std::iter::from_fn(|| s.next_phase()).collect();
        assert_eq!(phases.len(), 7);
        assert!(!phases[0].ends_previous, "first phase has nothing to cut");
        assert!(phases[1..].iter().all(|p| p.ends_previous));
        // Shifts walk 1 + (3 + p) mod 5: 4, 5, 1, 2, 3, 4, 5 — never 0.
        for (p, phase) in phases.iter().enumerate() {
            assert_eq!(phase.admission, Admission::AtTick(p as u64 * 50));
            for f in &phase.flows {
                assert_ne!(f.src, f.dst);
            }
        }
    }

    #[test]
    fn incast_is_one_phase_of_pure_fan_in() {
        let mut s = Incast::new(vec![0, 1, 2, 3, 8, 9], 15, 500_000);
        let p = s.next_phase().unwrap();
        assert_eq!(p.flows.len(), 6);
        assert!(p.flows.iter().all(|f| f.dst == 15));
        assert!(s.next_phase().is_none());
    }

    #[test]
    #[should_panic(expected = "receiver cannot also be a source")]
    fn incast_rejects_a_source_receiver() {
        let _ = Incast::new(vec![0, 1], 1, 100);
    }
}
