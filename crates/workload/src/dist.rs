//! Empirical CDFs with inverse-transform sampling.

use rand::{Rng, RngExt};

/// A distribution over flow sizes (bytes) given as CDF points
/// `(size, P[X ≤ size])`, linearly interpolated between points.
///
/// Linear interpolation is used for both sampling and the analytic mean so
/// the two are exactly consistent — the load calibration in the paper
/// ("100% load is when the rate equals link capacity divided by the mean
/// flow size") depends on that consistency.
#[derive(Debug, Clone)]
pub struct EmpiricalCdf {
    points: Vec<(f64, f64)>,
    mean: f64,
}

impl EmpiricalCdf {
    /// Builds a CDF from `(size_bytes, cumulative_probability)` points.
    ///
    /// # Panics
    /// Panics unless sizes are strictly increasing and positive,
    /// probabilities are non-decreasing in [0, 1], and the last
    /// probability is 1.
    pub fn new(points: &[(f64, f64)]) -> Self {
        assert!(points.len() >= 2, "need at least two CDF points");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "sizes must be strictly increasing");
            assert!(w[0].1 <= w[1].1, "probabilities must be non-decreasing");
        }
        assert!(points[0].0 > 0.0, "sizes must be positive");
        assert!((0.0..=1.0).contains(&points[0].1));
        assert!(
            (points.last().unwrap().1 - 1.0).abs() < 1e-12,
            "last probability must be 1"
        );
        // Mean of the piecewise-linear CDF: each segment contributes
        // Δp · midpoint; mass below the first point sits at the first
        // point (treated as an atom, as in published CDF reconstructions).
        let mut mean = points[0].0 * points[0].1;
        for w in points.windows(2) {
            let dp = w[1].1 - w[0].1;
            mean += dp * 0.5 * (w[0].0 + w[1].0);
        }
        Self {
            points: points.to_vec(),
            mean,
        }
    }

    /// The distribution mean in bytes.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Inverse-transform sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        self.quantile(u)
    }

    /// The `u`-quantile (`0 ≤ u ≤ 1`), linearly interpolated.
    pub fn quantile(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        if u <= self.points[0].1 {
            return self.points[0].0;
        }
        for w in self.points.windows(2) {
            let (x0, p0) = w[0];
            let (x1, p1) = w[1];
            if u <= p1 {
                if p1 == p0 {
                    return x1;
                }
                let f = (u - p0) / (p1 - p0);
                return x0 + f * (x1 - x0);
            }
        }
        self.points.last().unwrap().0
    }

    /// `P[X ≤ x]`, the CDF itself (inverse of [`EmpiricalCdf::quantile`]).
    pub fn cdf(&self, x: f64) -> f64 {
        if x < self.points[0].0 {
            return 0.0;
        }
        for w in self.points.windows(2) {
            let (x0, p0) = w[0];
            let (x1, p1) = w[1];
            if x <= x1 {
                let f = (x - x0) / (x1 - x0);
                return p0 + f * (p1 - p0);
            }
        }
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uniform_1k_2k() -> EmpiricalCdf {
        EmpiricalCdf::new(&[(1000.0, 0.0), (2000.0, 1.0)])
    }

    #[test]
    fn mean_of_uniform_segment() {
        assert!((uniform_1k_2k().mean() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate() {
        let d = uniform_1k_2k();
        assert_eq!(d.quantile(0.0), 1000.0);
        assert_eq!(d.quantile(0.5), 1500.0);
        assert_eq!(d.quantile(1.0), 2000.0);
    }

    #[test]
    fn cdf_inverts_quantile() {
        let d = EmpiricalCdf::new(&[(100.0, 0.1), (1000.0, 0.6), (50_000.0, 1.0)]);
        for &u in &[0.15, 0.3, 0.6, 0.8, 0.99] {
            let x = d.quantile(u);
            assert!((d.cdf(x) - u).abs() < 1e-9, "u={u}");
        }
    }

    #[test]
    fn atom_at_first_point() {
        let d = EmpiricalCdf::new(&[(100.0, 0.5), (200.0, 1.0)]);
        assert_eq!(d.quantile(0.25), 100.0);
        // mean = 0.5·100 (atom) + 0.5·150 (segment)
        assert!((d.mean() - 125.0).abs() < 1e-9);
    }

    #[test]
    fn sample_mean_approaches_analytic_mean() {
        let d = EmpiricalCdf::new(&[(100.0, 0.2), (1000.0, 0.7), (100_000.0, 1.0)]);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let sample_mean = total / n as f64;
        let rel = (sample_mean - d.mean()).abs() / d.mean();
        assert!(rel < 0.02, "sample {sample_mean} vs analytic {}", d.mean());
    }

    #[test]
    fn samples_stay_in_support() {
        let d = EmpiricalCdf::new(&[(50.0, 0.0), (500.0, 0.9), (5000.0, 1.0)]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((50.0..=5000.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_points_rejected() {
        let _ = EmpiricalCdf::new(&[(10.0, 0.0), (5.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "last probability")]
    fn incomplete_cdf_rejected() {
        let _ = EmpiricalCdf::new(&[(10.0, 0.0), (20.0, 0.9)]);
    }
}
