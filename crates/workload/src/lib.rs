//! Datacenter traffic workloads.
//!
//! §6.2: "To model micro-bursts, flowlets follow a Poisson arrival process.
//! Flowlet size distributions are according to the Web, Cache, and Hadoop
//! workloads published by Facebook [Roy et al., SIGCOMM 2015]. The Poisson
//! rate at which flows enter the system is chosen to reach a specific
//! average server load, where 100% load is when the rate equals server
//! link capacity divided by the mean flow size. ... Sources and
//! destinations are chosen uniformly at random."
//!
//! The exact Facebook CDFs are not published as data; [`facebook`]
//! provides piecewise-linear approximations of the published curves that
//! preserve the properties the evaluation depends on (see DESIGN.md §4):
//! Web has the smallest flows (hence the highest flowlet churn and the
//! most allocator update traffic), Cache intermediate objects, Hadoop the
//! heavy tail.

#![forbid(unsafe_code)]

pub mod adversarial;
pub mod collective;
pub mod dist;
pub mod facebook;
pub mod generator;
pub mod poisson;
pub mod scenario;

pub use adversarial::{BurstyOnOff, Incast, PermutationShift};
pub use collective::{AllToAll, RingAllreduce, TreeAllreduce};
pub use dist::EmpiricalCdf;
pub use facebook::{Workload, CACHE, HADOOP, WEB};
pub use generator::{
    rack_traffic_matrix, ConvergenceScenario, FlowletEvent, RackAffinity, TraceConfig,
    TraceGenerator,
};
pub use poisson::PoissonArrivals;
pub use scenario::{Admission, Phase, Scenario, ScenarioFlow, ScenarioKind};
