//! Approximations of the Facebook production flow-size distributions
//! (Roy et al., "Inside the social network's (datacenter) network",
//! SIGCOMM 2015) used by the paper's simulations.
//!
//! The SIGCOMM paper publishes the distributions only as plotted CDFs, so
//! these are piecewise-linear reconstructions. What matters for the
//! Flowtune evaluation (and what these preserve):
//!
//! * **Web** — dominated by tiny responses (most flows under a few kB),
//!   smallest mean ⇒ highest flowlet arrival rate at a given load ⇒ "the
//!   highest rate of changes and hence stresses Flowtune the most" (§6.2)
//!   and the largest allocator update traffic (Figure 5).
//! * **Cache** — follower/leader object traffic, mostly 1–100 kB objects,
//!   intermediate mean.
//! * **Hadoop** — many small control transfers plus a heavy shuffle tail
//!   into the hundreds of MB, the largest mean ⇒ fewest flowlets/s ⇒ the
//!   least update traffic.

use crate::dist::EmpiricalCdf;

/// A named workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Web servers.
    Web,
    /// Cache leaders/followers.
    Cache,
    /// Hadoop cluster.
    Hadoop,
}

impl Workload {
    /// All three workloads, in the paper's order.
    pub const ALL: [Workload; 3] = [Workload::Web, Workload::Cache, Workload::Hadoop];

    /// The flow-size distribution.
    pub fn cdf(self) -> EmpiricalCdf {
        let points: &[(f64, f64)] = match self {
            Workload::Web => WEB,
            Workload::Cache => CACHE,
            Workload::Hadoop => HADOOP,
        };
        EmpiricalCdf::new(points)
    }

    /// Display name (lower case, as in the figures).
    pub fn name(self) -> &'static str {
        match self {
            Workload::Web => "web",
            Workload::Cache => "cache",
            Workload::Hadoop => "hadoop",
        }
    }
}

/// Web workload CDF points `(bytes, P[X ≤ bytes])`.
pub const WEB: &[(f64, f64)] = &[
    (250.0, 0.05),
    (500.0, 0.15),
    (1_000.0, 0.30),
    (2_000.0, 0.45),
    (5_000.0, 0.60),
    (10_000.0, 0.70),
    (30_000.0, 0.80),
    (100_000.0, 0.88),
    (500_000.0, 0.95),
    (2_000_000.0, 0.99),
    (10_000_000.0, 1.0),
];

/// Cache workload CDF points.
pub const CACHE: &[(f64, f64)] = &[
    (500.0, 0.05),
    (2_000.0, 0.15),
    (10_000.0, 0.40),
    (50_000.0, 0.70),
    (100_000.0, 0.80),
    (500_000.0, 0.93),
    (2_000_000.0, 0.98),
    (20_000_000.0, 1.0),
];

/// Hadoop workload CDF points.
pub const HADOOP: &[(f64, f64)] = &[
    (300.0, 0.10),
    (1_000.0, 0.40),
    (10_000.0, 0.63),
    (100_000.0, 0.77),
    (1_000_000.0, 0.86),
    (10_000_000.0, 0.93),
    (100_000_000.0, 0.98),
    (400_000_000.0, 1.0),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_are_ordered_web_cache_hadoop() {
        // The §6.4 result ordering (update traffic: web > cache > hadoop)
        // follows from mean sizes hadoop > cache > web.
        let web = Workload::Web.cdf().mean();
        let cache = Workload::Cache.cdf().mean();
        let hadoop = Workload::Hadoop.cdf().mean();
        assert!(web < cache, "web {web} < cache {cache}");
        assert!(cache < hadoop, "cache {cache} < hadoop {hadoop}");
    }

    #[test]
    fn web_is_mostly_small_flows() {
        // [11]-style observation: "the majority of flows are under 10
        // packets" (15 kB at 1500 B MTU).
        let web = Workload::Web.cdf();
        assert!(web.cdf(15_000.0) > 0.5);
    }

    #[test]
    fn hadoop_has_a_heavy_tail() {
        let hadoop = Workload::Hadoop.cdf();
        assert!(hadoop.cdf(1_000_000.0) < 0.9, "≥10% of flows above 1 MB");
        assert!(hadoop.mean() > 5_000_000.0, "mean dominated by the tail");
    }

    #[test]
    fn all_workloads_build_and_name() {
        for w in Workload::ALL {
            let _ = w.cdf();
            assert!(!w.name().is_empty());
        }
    }
}
