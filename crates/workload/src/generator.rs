//! Flowlet trace generation.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::facebook::Workload;
use crate::poisson::PoissonArrivals;

/// One generated flowlet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowletEvent {
    /// Arrival time, picoseconds from trace start.
    pub at_ps: u64,
    /// Source server index.
    pub src: u32,
    /// Destination server index (≠ src).
    pub dst: u32,
    /// Flowlet size in bytes.
    pub bytes: u64,
    /// Sequential flowlet id (unique within the trace).
    pub id: u64,
}

/// Trace parameters.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Which flow-size distribution to draw from.
    pub workload: Workload,
    /// Average server load in (0, 1].
    pub load: f64,
    /// Number of servers; sources and destinations are uniform.
    pub servers: usize,
    /// Server access-link capacity (bits/s) for the load calibration.
    pub server_link_bps: u64,
    /// RNG seed — traces are fully reproducible.
    pub seed: u64,
}

/// An infinite, lazily-generated Poisson flowlet trace.
#[derive(Debug)]
pub struct TraceGenerator {
    cfg: TraceConfig,
    arrivals: PoissonArrivals,
    cdf: crate::dist::EmpiricalCdf,
    rng: StdRng,
    clock_ps: u64,
    next_id: u64,
}

impl TraceGenerator {
    /// Builds a generator.
    ///
    /// # Panics
    /// Panics if `servers < 2` (flows need distinct endpoints) or the load
    /// is not positive.
    pub fn new(cfg: TraceConfig) -> Self {
        assert!(cfg.servers >= 2, "need at least two servers");
        let cdf = cfg.workload.cdf();
        let arrivals =
            PoissonArrivals::for_load(cfg.load, cfg.servers, cfg.server_link_bps, cdf.mean());
        let rng = StdRng::seed_from_u64(cfg.seed);
        Self {
            cfg,
            arrivals,
            cdf,
            rng,
            clock_ps: 0,
            next_id: 0,
        }
    }

    /// Aggregate flowlet arrival rate (per second).
    pub fn rate_per_sec(&self) -> f64 {
        self.arrivals.rate_per_sec()
    }

    /// Mean flowlet size of the configured workload (bytes).
    pub fn mean_bytes(&self) -> f64 {
        self.cdf.mean()
    }

    /// Generates the next flowlet (arrival times strictly increase).
    pub fn next_event(&mut self) -> FlowletEvent {
        self.clock_ps += self.arrivals.next_gap_ps(&mut self.rng).max(1);
        let src = self.rng.random_range(0..self.cfg.servers) as u32;
        let mut dst = self.rng.random_range(0..self.cfg.servers) as u32;
        if dst == src {
            dst = (dst + 1) % self.cfg.servers as u32;
        }
        let bytes = self.cdf.sample(&mut self.rng).max(1.0) as u64;
        let id = self.next_id;
        self.next_id += 1;
        FlowletEvent {
            at_ps: self.clock_ps,
            src,
            dst,
            bytes,
            id,
        }
    }

    /// Collects every flowlet arriving before `horizon_ps`.
    pub fn events_until(&mut self, horizon_ps: u64) -> Vec<FlowletEvent> {
        let mut out = Vec::new();
        loop {
            let e = self.next_event();
            if e.at_ps >= horizon_ps {
                // The generator's clock has passed the horizon; the event
                // is discarded (the trace is a prefix, not a stream with
                // push-back), which is fine for fixed-horizon experiments.
                return out;
            }
            out.push(e);
        }
    }
}

/// The §6.3 convergence experiment: five senders to one receiver, one
/// long-running flow starting every 10 ms, then one stopping every 10 ms.
#[derive(Debug, Clone)]
pub struct ConvergenceScenario {
    /// Sender server indices (5 in the paper).
    pub senders: Vec<u32>,
    /// Receiver server index.
    pub receiver: u32,
    /// Gap between consecutive starts/stops, ps (10 ms in the paper).
    pub stagger_ps: u64,
}

impl ConvergenceScenario {
    /// The paper's configuration on a 144-server fabric: senders 0–4
    /// (picked in different racks by the caller if desired), receiver 5,
    /// 10 ms stagger.
    pub fn paper_default() -> Self {
        Self {
            senders: vec![0, 16, 32, 48, 64],
            receiver: 5,
            stagger_ps: 10_000_000_000, // 10 ms
        }
    }

    /// `(start_ps, stop_ps)` for each sender: sender `k` starts at
    /// `k·stagger` and stops at `(N+k)·stagger`, so the active set ramps
    /// 1,2,…,N then N−1,…,0 — exactly Figure 4's staircase.
    pub fn schedule(&self) -> Vec<(u64, u64)> {
        let n = self.senders.len() as u64;
        (0..n)
            .map(|k| (k * self.stagger_ps, (n + k) * self.stagger_ps))
            .collect()
    }

    /// Total experiment duration (when the last flow stops).
    pub fn duration_ps(&self) -> u64 {
        2 * self.senders.len() as u64 * self.stagger_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(load: f64, seed: u64) -> TraceConfig {
        TraceConfig {
            workload: Workload::Web,
            load,
            servers: 144,
            server_link_bps: 10_000_000_000,
            seed,
        }
    }

    #[test]
    fn trace_is_reproducible() {
        let mut a = TraceGenerator::new(cfg(0.5, 42));
        let mut b = TraceGenerator::new(cfg(0.5, 42));
        for _ in 0..100 {
            assert_eq!(a.next_event(), b.next_event());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TraceGenerator::new(cfg(0.5, 1));
        let mut b = TraceGenerator::new(cfg(0.5, 2));
        let ea: Vec<_> = (0..10).map(|_| a.next_event()).collect();
        let eb: Vec<_> = (0..10).map(|_| b.next_event()).collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn times_strictly_increase_and_ids_are_sequential() {
        let mut g = TraceGenerator::new(cfg(0.8, 3));
        let mut last = 0;
        for i in 0..1000 {
            let e = g.next_event();
            assert!(e.at_ps > last);
            assert_eq!(e.id, i);
            assert_ne!(e.src, e.dst);
            assert!(e.bytes >= 1);
            last = e.at_ps;
        }
    }

    #[test]
    fn offered_load_matches_target() {
        // Generate 200 ms of trace and check total offered bytes/s per
        // server ≈ load × capacity.
        let load = 0.6;
        let mut g = TraceGenerator::new(cfg(load, 9));
        let horizon_ps: u64 = 200_000_000_000; // 200 ms
        let events = g.events_until(horizon_ps);
        let total_bytes: u64 = events.iter().map(|e| e.bytes).sum();
        let secs = horizon_ps as f64 / 1e12;
        let offered_bps = total_bytes as f64 * 8.0 / secs / 144.0;
        let target = load * 1e10;
        let rel = (offered_bps - target).abs() / target;
        assert!(
            rel < 0.1,
            "offered {offered_bps:.3e} vs target {target:.3e}"
        );
    }

    #[test]
    fn doubling_load_doubles_rate() {
        let a = TraceGenerator::new(cfg(0.3, 1)).rate_per_sec();
        let b = TraceGenerator::new(cfg(0.6, 1)).rate_per_sec();
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn convergence_schedule_staircase() {
        let s = ConvergenceScenario::paper_default();
        let sched = s.schedule();
        assert_eq!(sched.len(), 5);
        assert_eq!(sched[0], (0, 50_000_000_000));
        assert_eq!(sched[4], (40_000_000_000, 90_000_000_000));
        assert_eq!(s.duration_ps(), 100_000_000_000);
        // At t = 45 ms: started 0..4 (all 5), stopped senders with stop <
        // 45 ms: none (first stop at 50 ms) → 5 active.
        let t = 45_000_000_000u64;
        let active = sched.iter().filter(|&&(a, b)| a <= t && t < b).count();
        assert_eq!(active, 5);
    }

    #[test]
    #[should_panic(expected = "at least two servers")]
    fn one_server_rejected() {
        let mut c = cfg(0.5, 1);
        c.servers = 1;
        let _ = TraceGenerator::new(c);
    }
}
