//! Flowlet trace generation.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::facebook::Workload;
use crate::poisson::PoissonArrivals;

/// One generated flowlet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowletEvent {
    /// Arrival time, picoseconds from trace start.
    pub at_ps: u64,
    /// Source server index.
    pub src: u32,
    /// Destination server index (≠ src).
    pub dst: u32,
    /// Flowlet size in bytes.
    pub bytes: u64,
    /// Sequential flowlet id (unique within the trace).
    pub id: u64,
}

/// Destination skew toward a source's rack-affinity class — the
/// "communicating racks" structure exchange-aware shard placement
/// exploits. Racks are striped into `classes` interleaved classes (rack
/// `r` belongs to class `r % classes`), so class members are *never*
/// contiguous: a contiguous equal-range shard split always separates
/// them, which is exactly the adversarial case a traffic-aware placement
/// repairs by grouping each class into one shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RackAffinity {
    /// Probability that a flowlet's destination is drawn from the
    /// source's own class (the remainder stays uniform over all
    /// servers). 0 disables the skew.
    pub probability: f64,
    /// Servers per rack (the class granularity).
    pub servers_per_rack: usize,
    /// Number of interleaved rack classes (≥ 2 for any skew to exist).
    pub classes: usize,
}

impl RackAffinity {
    /// The benchmark default: strong (90%) affinity over two interleaved
    /// classes of 16-server racks.
    pub fn heavy() -> Self {
        Self {
            probability: 0.9,
            servers_per_rack: 16,
            classes: 2,
        }
    }
}

/// Trace parameters.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Which flow-size distribution to draw from.
    pub workload: Workload,
    /// Average server load in (0, 1].
    pub load: f64,
    /// Number of servers; sources are uniform, destinations are uniform
    /// unless `affinity` skews them.
    pub servers: usize,
    /// Server access-link capacity (bits/s) for the load calibration.
    pub server_link_bps: u64,
    /// RNG seed — traces are fully reproducible.
    pub seed: u64,
    /// Optional rack-affine destination skew (`None` = uniform, the
    /// historical behavior).
    pub affinity: Option<RackAffinity>,
}

/// An infinite, lazily-generated Poisson flowlet trace.
#[derive(Debug)]
pub struct TraceGenerator {
    cfg: TraceConfig,
    arrivals: PoissonArrivals,
    cdf: crate::dist::EmpiricalCdf,
    rng: StdRng,
    clock_ps: u64,
    next_id: u64,
}

impl TraceGenerator {
    /// Builds a generator.
    ///
    /// # Panics
    /// Panics if `servers < 2` (flows need distinct endpoints) or the load
    /// is not positive.
    pub fn new(cfg: TraceConfig) -> Self {
        assert!(cfg.servers >= 2, "need at least two servers");
        let cdf = cfg.workload.cdf();
        let arrivals =
            PoissonArrivals::for_load(cfg.load, cfg.servers, cfg.server_link_bps, cdf.mean());
        let rng = StdRng::seed_from_u64(cfg.seed);
        Self {
            cfg,
            arrivals,
            cdf,
            rng,
            clock_ps: 0,
            next_id: 0,
        }
    }

    /// Aggregate flowlet arrival rate (per second).
    pub fn rate_per_sec(&self) -> f64 {
        self.arrivals.rate_per_sec()
    }

    /// Mean flowlet size of the configured workload (bytes).
    pub fn mean_bytes(&self) -> f64 {
        self.cdf.mean()
    }

    /// Generates the next flowlet (arrival times strictly increase).
    pub fn next_event(&mut self) -> FlowletEvent {
        self.clock_ps += self.arrivals.next_gap_ps(&mut self.rng).max(1);
        let src = self.rng.random_range(0..self.cfg.servers) as u32;
        let mut dst = self.pick_dst(src);
        if dst == src {
            dst = (dst + 1) % self.cfg.servers as u32;
        }
        let bytes = self.cdf.sample(&mut self.rng).max(1.0) as u64;
        let id = self.next_id;
        self.next_id += 1;
        FlowletEvent {
            at_ps: self.clock_ps,
            src,
            dst,
            bytes,
            id,
        }
    }

    /// The destination draw: uniform, or — with the configured affinity
    /// probability — uniform over the servers of the source's rack class.
    fn pick_dst(&mut self, src: u32) -> u32 {
        if let Some(aff) = self.cfg.affinity {
            let spr = aff.servers_per_rack;
            // Guard before dividing: a zero rack size falls back to the
            // uniform draw instead of panicking.
            let racks = self.cfg.servers.checked_div(spr).unwrap_or(0);
            let usable = aff.probability > 0.0 && aff.classes >= 2 && racks >= aff.classes;
            if usable && self.rng.random::<f64>() < aff.probability {
                // Racks of the source's class: src_class, src_class + classes, …
                let src_class = (src as usize / spr) % aff.classes;
                let class_racks = (racks - src_class).div_ceil(aff.classes);
                let pick = self.rng.random_range(0..class_racks * spr);
                let rack = src_class + (pick / spr) * aff.classes;
                return (rack * spr + pick % spr) as u32;
            }
        }
        self.rng.random_range(0..self.cfg.servers) as u32
    }

    /// Collects every flowlet arriving before `horizon_ps`.
    pub fn events_until(&mut self, horizon_ps: u64) -> Vec<FlowletEvent> {
        let mut out = Vec::new();
        loop {
            let e = self.next_event();
            if e.at_ps >= horizon_ps {
                // The generator's clock has passed the horizon; the event
                // is discarded (the trace is a prefix, not a stream with
                // push-back), which is fine for fixed-horizon experiments.
                return out;
            }
            out.push(e);
        }
    }
}

/// Samples the rack-by-rack traffic matrix a trace configuration offers:
/// row-major `racks × racks` offered bytes, estimated from the first
/// `samples` events of a **fresh** generator (the caller's own event
/// stream is untouched, and the same config + seed always yields the
/// same matrix — the determinism exchange-aware shard placement relies
/// on). Racks are `servers_per_rack`-sized server ranges.
///
/// # Panics
/// Panics if `servers_per_rack` is 0 or does not divide the config's
/// server count.
pub fn rack_traffic_matrix(cfg: &TraceConfig, servers_per_rack: usize, samples: usize) -> Vec<f64> {
    assert!(
        servers_per_rack > 0 && cfg.servers.is_multiple_of(servers_per_rack),
        "servers_per_rack must divide the server count"
    );
    let racks = cfg.servers / servers_per_rack;
    let mut weights = vec![0.0; racks * racks];
    let mut gen = TraceGenerator::new(cfg.clone());
    for _ in 0..samples {
        let e = gen.next_event();
        let (src, dst) = (
            e.src as usize / servers_per_rack,
            e.dst as usize / servers_per_rack,
        );
        weights[src * racks + dst] += e.bytes as f64;
    }
    weights
}

/// The §6.3 convergence experiment: five senders to one receiver, one
/// long-running flow starting every 10 ms, then one stopping every 10 ms.
#[derive(Debug, Clone)]
pub struct ConvergenceScenario {
    /// Sender server indices (5 in the paper).
    pub senders: Vec<u32>,
    /// Receiver server index.
    pub receiver: u32,
    /// Gap between consecutive starts/stops, ps (10 ms in the paper).
    pub stagger_ps: u64,
}

impl ConvergenceScenario {
    /// The paper's configuration on a 144-server fabric: senders 0–4
    /// (picked in different racks by the caller if desired), receiver 5,
    /// 10 ms stagger.
    pub fn paper_default() -> Self {
        Self {
            senders: vec![0, 16, 32, 48, 64],
            receiver: 5,
            stagger_ps: 10_000_000_000, // 10 ms
        }
    }

    /// `(start_ps, stop_ps)` for each sender: sender `k` starts at
    /// `k·stagger` and stops at `(N+k)·stagger`, so the active set ramps
    /// 1,2,…,N then N−1,…,0 — exactly Figure 4's staircase.
    pub fn schedule(&self) -> Vec<(u64, u64)> {
        let n = self.senders.len() as u64;
        (0..n)
            .map(|k| (k * self.stagger_ps, (n + k) * self.stagger_ps))
            .collect()
    }

    /// Total experiment duration (when the last flow stops).
    pub fn duration_ps(&self) -> u64 {
        2 * self.senders.len() as u64 * self.stagger_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(load: f64, seed: u64) -> TraceConfig {
        TraceConfig {
            workload: Workload::Web,
            load,
            servers: 144,
            server_link_bps: 10_000_000_000,
            seed,
            affinity: None,
        }
    }

    #[test]
    fn trace_is_reproducible() {
        let mut a = TraceGenerator::new(cfg(0.5, 42));
        let mut b = TraceGenerator::new(cfg(0.5, 42));
        for _ in 0..100 {
            assert_eq!(a.next_event(), b.next_event());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TraceGenerator::new(cfg(0.5, 1));
        let mut b = TraceGenerator::new(cfg(0.5, 2));
        let ea: Vec<_> = (0..10).map(|_| a.next_event()).collect();
        let eb: Vec<_> = (0..10).map(|_| b.next_event()).collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn times_strictly_increase_and_ids_are_sequential() {
        let mut g = TraceGenerator::new(cfg(0.8, 3));
        let mut last = 0;
        for i in 0..1000 {
            let e = g.next_event();
            assert!(e.at_ps > last);
            assert_eq!(e.id, i);
            assert_ne!(e.src, e.dst);
            assert!(e.bytes >= 1);
            last = e.at_ps;
        }
    }

    #[test]
    fn offered_load_matches_target() {
        // Generate 200 ms of trace and check total offered bytes/s per
        // server ≈ load × capacity.
        let load = 0.6;
        let mut g = TraceGenerator::new(cfg(load, 9));
        let horizon_ps: u64 = 200_000_000_000; // 200 ms
        let events = g.events_until(horizon_ps);
        let total_bytes: u64 = events.iter().map(|e| e.bytes).sum();
        let secs = horizon_ps as f64 / 1e12;
        let offered_bps = total_bytes as f64 * 8.0 / secs / 144.0;
        let target = load * 1e10;
        let rel = (offered_bps - target).abs() / target;
        assert!(
            rel < 0.1,
            "offered {offered_bps:.3e} vs target {target:.3e}"
        );
    }

    #[test]
    fn doubling_load_doubles_rate() {
        let a = TraceGenerator::new(cfg(0.3, 1)).rate_per_sec();
        let b = TraceGenerator::new(cfg(0.6, 1)).rate_per_sec();
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn convergence_schedule_staircase() {
        let s = ConvergenceScenario::paper_default();
        let sched = s.schedule();
        assert_eq!(sched.len(), 5);
        assert_eq!(sched[0], (0, 50_000_000_000));
        assert_eq!(sched[4], (40_000_000_000, 90_000_000_000));
        assert_eq!(s.duration_ps(), 100_000_000_000);
        // At t = 45 ms: started 0..4 (all 5), stopped senders with stop <
        // 45 ms: none (first stop at 50 ms) → 5 active.
        let t = 45_000_000_000u64;
        let active = sched.iter().filter(|&&(a, b)| a <= t && t < b).count();
        assert_eq!(active, 5);
    }

    #[test]
    fn affine_traces_stay_reproducible_and_in_class() {
        // 8 racks of 4 servers, two interleaved classes, full affinity.
        let mk = |seed| TraceConfig {
            workload: Workload::Web,
            load: 0.5,
            servers: 32,
            server_link_bps: 10_000_000_000,
            seed,
            affinity: Some(RackAffinity {
                probability: 1.0,
                servers_per_rack: 4,
                classes: 2,
            }),
        };
        let mut a = TraceGenerator::new(mk(9));
        let mut b = TraceGenerator::new(mk(9));
        for _ in 0..300 {
            let e = a.next_event();
            assert_eq!(e, b.next_event(), "same seed, same affine trace");
            assert_ne!(e.src, e.dst);
            // Full affinity: destination rack shares the source's class
            // (modulo the src==dst nudge, which stays in or next to the
            // source rack — both in class).
            let (sr, dr) = (e.src as usize / 4, e.dst as usize / 4);
            assert!(
                sr % 2 == dr % 2 || dr == (sr + 1) % 8,
                "src rack {sr} → dst rack {dr} left its class"
            );
        }
    }

    #[test]
    fn rack_matrix_reflects_the_affinity_classes() {
        let base = TraceConfig {
            workload: Workload::Web,
            load: 0.5,
            servers: 32,
            server_link_bps: 10_000_000_000,
            seed: 11,
            affinity: Some(RackAffinity {
                probability: 1.0,
                servers_per_rack: 4,
                classes: 2,
            }),
        };
        let m = rack_traffic_matrix(&base, 4, 2000);
        assert_eq!(m.len(), 64);
        // Deterministic: same config → same matrix.
        assert_eq!(m, rack_traffic_matrix(&base, 4, 2000));
        let (mut in_class, mut cross) = (0.0, 0.0);
        for s in 0..8 {
            for d in 0..8 {
                if s % 2 == d % 2 {
                    in_class += m[s * 8 + d];
                } else {
                    cross += m[s * 8 + d];
                }
            }
        }
        assert!(
            in_class > 20.0 * cross.max(1.0),
            "in-class {in_class} vs cross {cross}"
        );
        // A uniform config spreads weight across classes instead.
        let uniform = TraceConfig {
            affinity: None,
            ..base
        };
        let mu = rack_traffic_matrix(&uniform, 4, 2000);
        let cross_u: f64 = (0..8)
            .flat_map(|s| (0..8).map(move |d| (s, d)))
            .filter(|&(s, d)| s % 2 != d % 2)
            .map(|(s, d)| mu[s * 8 + d])
            .sum();
        assert!(cross_u > 0.0, "uniform traffic crosses classes");
    }

    #[test]
    #[should_panic(expected = "at least two servers")]
    fn one_server_rejected() {
        let mut c = cfg(0.5, 1);
        c.servers = 1;
        let _ = TraceGenerator::new(c);
    }
}
