//! Property tests for the scenario generators (ISSUE 10 satellite):
//!
//! * ring and tree allreduce conserve total bytes per participant across
//!   phases (sent == received for every rank, root included);
//! * permutation shift and all-to-all emit a bijection every phase;
//! * bursty on/off phase timing matches the configured duty cycle.
//!
//! Deterministic: proptest's default RNG is seeded per-case and the
//! generators themselves are pure functions of their config.

use std::collections::{HashMap, HashSet};

use flowtune_workload::scenario::Admission;
use flowtune_workload::{
    AllToAll, BurstyOnOff, PermutationShift, Phase, RingAllreduce, Scenario, TreeAllreduce,
};
use proptest::prelude::*;

fn drain(s: &mut dyn Scenario) -> Vec<Phase> {
    let mut phases = Vec::new();
    while let Some(p) = s.next_phase() {
        phases.push(p);
        assert!(phases.len() < 100_000, "runaway phase stream");
    }
    phases
}

/// (sent, received) byte totals per server over all phases.
fn totals(phases: &[Phase]) -> HashMap<u32, (u64, u64)> {
    let mut t: HashMap<u32, (u64, u64)> = HashMap::new();
    for p in phases {
        for f in &p.flows {
            t.entry(f.src).or_default().0 += f.bytes;
            t.entry(f.dst).or_default().1 += f.bytes;
        }
    }
    t
}

/// A phase's flows form a permutation of the participant set: every
/// participant appears exactly once as a source and once as a
/// destination, and no flow is a self-loop.
fn assert_bijection(p: &Phase, participants: &[u32]) {
    let srcs: HashSet<u32> = p.flows.iter().map(|f| f.src).collect();
    let dsts: HashSet<u32> = p.flows.iter().map(|f| f.dst).collect();
    let all: HashSet<u32> = participants.iter().copied().collect();
    assert_eq!(p.flows.len(), participants.len(), "{}", p.label);
    assert_eq!(srcs, all, "{}: sources are not a permutation", p.label);
    assert_eq!(dsts, all, "{}: destinations are not a permutation", p.label);
    for f in &p.flows {
        assert_ne!(f.src, f.dst, "{}: self-loop", p.label);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ring_allreduce_conserves_bytes_per_participant(
        n in 2usize..40,
        bytes in 1u64..1_000_000_000,
        base in 0u32..1000,
    ) {
        let participants: Vec<u32> = (base..base + n as u32).collect();
        let mut s = RingAllreduce::new(participants.clone(), bytes);
        let phases = drain(&mut s);
        prop_assert_eq!(phases.len(), 2 * (n - 1));
        let t = totals(&phases);
        prop_assert_eq!(t.len(), n);
        for (&server, &(sent, recv)) in &t {
            prop_assert_eq!(sent, recv, "server {}", server);
            prop_assert_eq!(sent, s.chunk_bytes() * (2 * (n as u64 - 1)));
        }
        // Every ring phase is itself a bijection of the participants.
        for p in &phases {
            assert_bijection(p, &participants);
            prop_assert_eq!(p.admission, Admission::AfterPrevious);
        }
    }

    #[test]
    fn tree_allreduce_conserves_bytes_per_participant(
        n in 2usize..64,
        bytes in 1u64..1_000_000_000,
    ) {
        let participants: Vec<u32> = (0..n as u32).collect();
        let mut s = TreeAllreduce::new(participants, bytes);
        let phases = drain(&mut s);
        let t = totals(&phases);
        prop_assert_eq!(t.len(), n, "every participant moves bytes");
        for (&server, &(sent, recv)) in &t {
            prop_assert_eq!(sent, recv, "server {} (root included)", server);
        }
        // Total traffic: every non-root edge is crossed exactly twice.
        let injected: u64 = phases.iter().map(|p| p.bytes()).sum();
        prop_assert_eq!(injected, 2 * (n as u64 - 1) * bytes);
    }

    #[test]
    fn alltoall_emits_a_bijection_every_phase_and_covers_every_pair(
        n in 2usize..24,
        bytes in 1u64..1_000_000,
    ) {
        let participants: Vec<u32> = (0..n as u32).collect();
        let mut s = AllToAll::new(participants.clone(), bytes);
        let phases = drain(&mut s);
        prop_assert_eq!(phases.len(), n - 1);
        let mut pairs = HashSet::new();
        for p in &phases {
            assert_bijection(p, &participants);
            for f in &p.flows {
                prop_assert!(pairs.insert((f.src, f.dst)), "pair repeated");
            }
        }
        prop_assert_eq!(pairs.len(), n * (n - 1));
    }

    #[test]
    fn permutation_shift_emits_a_bijection_every_phase(
        servers in 2u32..48,
        rotate_every in 1u64..500,
        phases_n in 1u64..12,
        base_shift in 0u32..100,
        bytes in 1u64..1_000_000,
    ) {
        let participants: Vec<u32> = (0..servers).collect();
        let mut s = PermutationShift::new(servers, bytes, rotate_every, phases_n, base_shift);
        let phases = drain(&mut s);
        prop_assert_eq!(phases.len(), phases_n as usize);
        for (i, p) in phases.iter().enumerate() {
            assert_bijection(p, &participants);
            prop_assert_eq!(p.admission, Admission::AtTick(i as u64 * rotate_every));
            prop_assert_eq!(p.ends_previous, i > 0, "rotation cuts its predecessor");
        }
    }

    #[test]
    fn bursty_on_off_timing_matches_the_configured_duty_cycle(
        servers in 2u32..64,
        on in 1u64..200,
        off in 1u64..200,
        bursts in 1u64..10,
        bytes in 1u64..1_000_000,
    ) {
        let s0 = BurstyOnOff::new(servers, bytes, on, off, bursts);
        prop_assert!((s0.duty_cycle() - on as f64 / (on + off) as f64).abs() < 1e-12);
        let mut s = s0.clone();
        let phases = drain(&mut s);
        prop_assert_eq!(phases.len(), 2 * bursts as usize);
        // Reconstruct the on-windows from the phase stream itself: each
        // burst phase opens a window its cut phase closes.
        let mut on_ticks = 0u64;
        let mut span = 0u64;
        for pair in phases.chunks(2) {
            let (Admission::AtTick(start), Admission::AtTick(stop)) =
                (pair[0].admission, pair[1].admission)
            else {
                prop_assert!(false, "burst phases must be timed");
                unreachable!();
            };
            prop_assert!(!pair[0].ends_previous && !pair[0].flows.is_empty());
            prop_assert!(pair[1].ends_previous && pair[1].flows.is_empty());
            prop_assert_eq!(stop - start, on);
            on_ticks += stop - start;
            span = span.max(start + on + off);
        }
        let measured = on_ticks as f64 / span as f64;
        prop_assert!(
            (measured - s0.duty_cycle()).abs() < 1e-12,
            "measured duty {} vs configured {}",
            measured,
            s0.duty_cycle()
        );
        // Each burst sends from the lower half to the upper half.
        prop_assert_eq!(phases[0].flows.len(), servers as usize / 2);
    }
}
