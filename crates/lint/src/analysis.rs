//! Structural facts the rules share: function body spans and
//! `#[cfg(test)]` / `#[test]` regions, recovered from the token stream
//! by brace matching (no full parse needed).

use crate::lexer::{Lexed, Tok};

/// One function body located in the token stream.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Token index of the body's opening `{`.
    pub body_start: usize,
    /// Token index of the body's closing `}` (or one past the last
    /// token if the file is truncated).
    pub body_end: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// Line ranges (inclusive) covered by test-only code.
#[derive(Debug, Default)]
pub struct TestRegions(Vec<(u32, u32)>);

impl TestRegions {
    /// Is `line` inside a `#[cfg(test)]` module or `#[test]` function?
    pub fn contains(&self, line: u32) -> bool {
        self.0.iter().any(|&(a, b)| a <= line && line <= b)
    }
}

/// The structural analysis of one lexed file.
#[derive(Debug)]
pub struct Analysis {
    /// Every function body, in source order (outer before nested).
    pub fns: Vec<FnSpan>,
    /// Test-only line ranges.
    pub tests: TestRegions,
}

/// The innermost function containing token index `i`, if any.
pub fn enclosing_fn(fns: &[FnSpan], i: usize) -> Option<&FnSpan> {
    fns.iter()
        .filter(|f| f.body_start < i && i < f.body_end)
        .max_by_key(|f| f.body_start)
}

/// Walk the token stream recovering function spans and test regions.
pub fn analyze(lexed: &Lexed) -> Analysis {
    let toks = &lexed.tokens;
    let mut fns: Vec<FnSpan> = Vec::new();
    let mut tests: Vec<(u32, u32)> = Vec::new();

    // Items whose body we are waiting to open (`fn f<T>(..) -> X {`,
    // `mod tests {`): armed by the keyword, resolved at the next `{` at
    // zero paren/bracket depth, cancelled by a `;` there (trait method
    // declarations, `mod foo;`).
    struct Pending {
        name: String,
        line: u32,
        is_fn: bool,
        is_test: bool,
    }
    let mut pending: Option<Pending> = None;
    // A `#[test]` / `#[cfg(test)]`-ish attribute was seen; the next
    // item body is test-only.
    let mut test_attr = false;
    // Open bodies: (token index of `{`, brace depth before it, Some(fn
    // span slot) / None for non-fn bodies, test-region start line).
    struct Open {
        tok: usize,
        fn_slot: Option<usize>,
        test_start: Option<u32>,
    }
    let mut stack: Vec<Open> = Vec::new();

    let mut paren = 0i64; // ( ) and [ ] depth inside a pending signature
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t {
            _ if t.is_ident("fn") => {
                if let Some(name_tok) = toks.get(i + 1) {
                    if name_tok.kind == crate::lexer::TokKind::Ident {
                        pending = Some(Pending {
                            name: name_tok.text.clone(),
                            line: t.line,
                            is_fn: true,
                            is_test: test_attr,
                        });
                        test_attr = false;
                        paren = 0;
                        i += 2;
                        continue;
                    }
                }
            }
            _ if t.is_ident("mod") || t.is_ident("impl") || t.is_ident("trait") => {
                // `impl`/`trait` bodies are transparent for test
                // regions unless the attribute said otherwise; `mod`
                // under #[cfg(test)] is the classic unit-test block.
                pending = Some(Pending {
                    name: toks
                        .get(i + 1)
                        .filter(|n| n.kind == crate::lexer::TokKind::Ident)
                        .map(|n| n.text.clone())
                        .unwrap_or_default(),
                    line: t.line,
                    is_fn: false,
                    is_test: test_attr,
                });
                test_attr = false;
                paren = 0;
            }
            // Inside an attribute like #[test], #[cfg(test)],
            // #[cfg(all(test, …))]: mark only when the `test` ident
            // itself shows up between `#[` and `]`. Cheap check:
            // look back for `#` within a few tokens.
            _ if t.is_ident("test") && attr_context(toks, i) => test_attr = true,
            _ if (t.is_punct('(') || t.is_punct('[')) && pending.is_some() => paren += 1,
            _ if (t.is_punct(')') || t.is_punct(']')) && pending.is_some() => paren -= 1,
            _ if t.is_punct(';') && paren == 0 => pending = None,
            _ if t.is_punct('{') => {
                let p = if paren == 0 { pending.take() } else { None };
                let (fn_slot, test_start) = match p {
                    Some(p) => {
                        let slot = if p.is_fn {
                            fns.push(FnSpan {
                                name: p.name,
                                body_start: i,
                                body_end: toks.len(),
                                line: p.line,
                            });
                            Some(fns.len() - 1)
                        } else {
                            None
                        };
                        (slot, p.is_test.then_some(p.line))
                    }
                    None => (None, None),
                };
                stack.push(Open {
                    tok: i,
                    fn_slot,
                    test_start,
                });
            }
            _ if t.is_punct('}') => {
                if let Some(open) = stack.pop() {
                    debug_assert!(open.tok < i);
                    if let Some(slot) = open.fn_slot {
                        fns[slot].body_end = i;
                    }
                    if let Some(start) = open.test_start {
                        tests.push((start, t.line));
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }

    Analysis {
        fns,
        tests: TestRegions(tests),
    }
}

/// Is token `i` (an ident) inside an attribute — i.e. preceded by `#[`
/// within a short window with no intervening `]`?
fn attr_context(toks: &[Tok], i: usize) -> bool {
    let lo = i.saturating_sub(8);
    let mut saw_open = false;
    for k in (lo..i).rev() {
        let t = &toks[k];
        if t.is_punct(']') {
            return false;
        }
        if t.is_punct('[') {
            saw_open = true;
        } else if saw_open && t.is_punct('#') {
            return true;
        }
    }
    false
}
