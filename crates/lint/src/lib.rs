//! flowtune-lint: workspace-native static analysis.
//!
//! Four rule families, each enforcing an invariant the runtime test
//! suite pins but can only spot-check:
//!
//! * **hot-path-alloc** — no allocating calls in the designated
//!   steady-state functions (the allocator tick, the exchange round,
//!   the transport send/recv paths). Extends the counting-allocator
//!   guarantee of `crates/net/tests/zero_alloc.rs` to every branch.
//! * **panic** — no `unwrap`/`expect`/`panic!`/unchecked indexing in
//!   `flowtune-proto` or the net decode/receive paths; a malformed
//!   frame from a peer must surface as an error value, never abort the
//!   arbiter.
//! * **wire-exhaustive** — every `TAG_*` record constant appears on
//!   both the encode and decode side, tag values are unique, and the
//!   bytes `encode_header` appends agree with `FRAME_HEADER_BYTES`.
//! * **float-determinism** — no `HashMap`/`HashSet`-order iteration in
//!   pricing/exchange/export code, where iteration order would make
//!   f64 accumulation order (and thus emitted rates) nondeterministic.
//!
//! Findings are suppressed line-by-line with
//! `// flowtune-lint: allow(<rule>, "<why>")`; a suppression without a
//! justification is itself a finding.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analysis;
pub mod lexer;
pub mod report;
pub mod rules;

use report::{apply_suppressions, Finding};
use std::path::{Path, PathBuf};

/// Lint one file's source text. `rel_path` must be workspace-relative
/// with `/` separators — it selects which rule scopes apply.
pub fn lint_file(rel_path: &str, source: &str) -> Vec<Finding> {
    let (raw, lexed) = rules::lint_source(rel_path, source);
    apply_suppressions(rel_path, raw, &lexed)
}

/// Directories scanned under the workspace root, relative to it.
/// `crates/compat` (vendored third-party shims) and `crates/lint`
/// itself (its fixtures deliberately contain violations) are excluded.
const SCAN_ROOTS: &[&str] = &["crates", "src"];
const SKIP_CRATES: &[&str] = &["compat", "lint"];

/// Walk the workspace and lint every `.rs` file under the scan roots.
/// Returns findings sorted by (file, line). I/O errors surface as
/// `Err` with the offending path in the message.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut findings = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .map_err(|_| format!("path {} escapes root", path.display()))?;
        let rel_str = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if SKIP_CRATES
            .iter()
            .any(|c| rel_str.starts_with(&format!("crates/{c}/")))
        {
            continue;
        }
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        findings.extend(lint_file(&rel_str, &source));
    }
    findings.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    Ok(findings)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == "fixtures" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
