//! A small Rust lexer, sufficient for rule matching.
//!
//! Produces a token stream with line spans in which comments, string
//! literals and char literals have been stripped — so a `format!` inside
//! a doc comment or an `unwrap` inside an error-message string never
//! fires a rule. Comments are not discarded blindly: each one is scanned
//! for a `flowtune-lint:` suppression directive first.
//!
//! The tricky corners this lexer gets right (and the test suite pins):
//!
//! * raw strings `r"…"` / `r#"…"#` with any number of hashes, plus the
//!   `b`/`br` byte-string prefixes;
//! * nested block comments (`/* /* */ */` is one comment);
//! * lifetimes vs. char literals (`'a` is a lifetime token, `'a'` is a
//!   char literal, `'\''` is a char literal too);
//! * numeric literals with suffixes and underscores (`0xFF_u8`, `1_000`).

/// What kind of token was lexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// Numeric, string, char or byte literal. String/char contents are
    /// replaced by a placeholder so rules never match inside them.
    Literal,
    /// A lifetime such as `'a` (quote included in the text).
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Token text (`"<str>"` placeholder for string/char literals).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Is this the identifier `s`?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// A `// flowtune-lint: allow(<rule>, "<why>")` suppression found in a
/// comment.
#[derive(Debug, Clone)]
pub struct Directive {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// The line of code the suppression applies to: its own line for a
    /// trailing comment, the next code line for a comment on its own
    /// line. Resolved by [`lex`] after the whole file is tokenized.
    pub applies_to: u32,
    /// The rule name inside `allow(...)`.
    pub rule: String,
    /// The quoted justification, if one was given. Suppressions without
    /// a justification are themselves reported as findings.
    pub reason: Option<String>,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and literal contents stripped.
    pub tokens: Vec<Tok>,
    /// Every `flowtune-lint:` directive found in a comment.
    pub directives: Vec<Directive>,
}

/// Marker kept in place of string/char literal contents.
pub const LITERAL_PLACEHOLDER: &str = "\"<lit>\"";

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Consume a char body after the opening `'`, including the closing
    /// quote. The opening quote is already consumed.
    fn char_literal(&mut self) {
        if self.peek() == Some(b'\\') {
            self.bump(); // backslash
            self.bump(); // escaped char (enough for \', \\, \n, \u{…} start)
            if self.src.get(self.pos.wrapping_sub(1)) == Some(&b'{') {
                while let Some(c) = self.bump() {
                    if c == b'}' {
                        break;
                    }
                }
            }
        } else {
            // One (possibly multi-byte) character.
            self.bump();
            while self
                .peek()
                .is_some_and(|c| c >= 0x80 && self.src[self.pos - 1] >= 0x80)
            {
                self.bump();
            }
        }
        if self.peek() == Some(b'\'') {
            self.bump();
        }
    }

    /// Consume a normal (escaping) string body after the opening quote.
    fn string_literal(&mut self, quote: u8) {
        while let Some(c) = self.bump() {
            if c == b'\\' {
                self.bump();
            } else if c == quote {
                break;
            }
        }
    }

    /// Is the cursor (just past an `r`/`br` prefix) at a raw-string
    /// opener `#…#"`? Distinguishes `r#"…"#` from the raw identifier
    /// `r#foo` without consuming anything.
    fn at_raw_string(&self) -> bool {
        let mut ahead = 0usize;
        while self.peek_at(ahead) == Some(b'#') {
            ahead += 1;
        }
        self.peek_at(ahead) == Some(b'"')
    }

    /// Consume a raw string after the `r`: `#…#"…"#…#`.
    fn raw_string(&mut self) {
        let mut hashes = 0usize;
        while self.peek() == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // the opening quote — at_raw_string checked it
        loop {
            match self.bump() {
                None => return,
                Some(b'"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek() == Some(b'#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        return;
                    }
                }
                Some(_) => {}
            }
        }
    }
}

/// Parse `flowtune-lint: allow(rule, "reason")` out of a comment body.
fn parse_directive(comment: &str, line: u32) -> Option<Directive> {
    let at = comment.find("flowtune-lint:")?;
    let rest = comment[at + "flowtune-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.rfind(')')?;
    let inner = &rest[..close];
    let (rule, reason) = match inner.find(',') {
        Some(comma) => {
            let why = inner[comma + 1..].trim();
            let why = why
                .strip_prefix('"')
                .and_then(|w| w.strip_suffix('"'))
                .map(str::to_owned);
            (inner[..comma].trim(), why)
        }
        None => (inner.trim(), None),
    };
    Some(Directive {
        line,
        applies_to: line, // fixed up by `lex` once token lines are known
        rule: rule.to_owned(),
        reason: reason.filter(|r| !r.trim().is_empty()),
    })
}

/// Lex `src` into tokens + directives. Never fails: unterminated
/// constructs consume to end of input.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();
    // Line of the most recently emitted token, to classify a directive
    // as trailing (code before it on its line) or standalone.
    let mut own_line: Vec<bool> = Vec::new();

    while let Some(c) = cur.peek() {
        let line = cur.line;
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let start = cur.pos;
                while cur.peek().is_some_and(|c| c != b'\n') {
                    cur.bump();
                }
                let text = &src[start..cur.pos];
                if let Some(d) = parse_directive(text, line) {
                    own_line.push(out.tokens.last().is_none_or(|t| t.line != line));
                    out.directives.push(d);
                }
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                let start = cur.pos;
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match cur.peek() {
                        None => break,
                        Some(b'/') if cur.peek_at(1) == Some(b'*') => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        Some(b'*') if cur.peek_at(1) == Some(b'/') => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                        }
                        Some(_) => {
                            cur.bump();
                        }
                    }
                }
                let text = &src[start..cur.pos];
                if let Some(d) = parse_directive(text, line) {
                    own_line.push(out.tokens.last().is_none_or(|t| t.line != line));
                    out.directives.push(d);
                }
            }
            b'\'' => {
                cur.bump();
                let is_lifetime = cur.peek().is_some_and(|n| is_ident_start(n as char)) && {
                    // Scan the ident run; a closing quote right after
                    // makes it a char literal ('a'), otherwise lifetime.
                    let mut ahead = 1;
                    while cur
                        .peek_at(ahead)
                        .is_some_and(|n| is_ident_continue(n as char))
                    {
                        ahead += 1;
                    }
                    cur.peek_at(ahead) != Some(b'\'')
                };
                if is_lifetime {
                    let start = cur.pos;
                    while cur.peek().is_some_and(|n| is_ident_continue(n as char)) {
                        cur.bump();
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Lifetime,
                        text: format!("'{}", &src[start..cur.pos]),
                        line,
                    });
                } else {
                    cur.char_literal();
                    out.tokens.push(Tok {
                        kind: TokKind::Literal,
                        text: LITERAL_PLACEHOLDER.to_owned(),
                        line,
                    });
                }
            }
            b'"' => {
                cur.bump();
                cur.string_literal(b'"');
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: LITERAL_PLACEHOLDER.to_owned(),
                    line,
                });
            }
            _ if is_ident_start(c as char) => {
                let start = cur.pos;
                // String prefixes: r"", r#""#, b"", br#""#, b''.
                let next = cur.peek_at(1);
                let next2 = cur.peek_at(2);
                let raw_prefix = match (c, next, next2) {
                    (b'r', Some(b'"') | Some(b'#'), _) => Some(1),
                    (b'b', Some(b'r'), Some(b'"') | Some(b'#')) => Some(2),
                    _ => None,
                };
                let byte_str = c == b'b' && next == Some(b'"');
                let byte_char = c == b'b' && next == Some(b'\'');
                if let Some(skip) = raw_prefix {
                    let probe = Cursor {
                        src: cur.src,
                        pos: cur.pos + skip,
                        line: cur.line,
                    };
                    if probe.at_raw_string() {
                        for _ in 0..skip {
                            cur.bump();
                        }
                        cur.raw_string();
                        out.tokens.push(Tok {
                            kind: TokKind::Literal,
                            text: LITERAL_PLACEHOLDER.to_owned(),
                            line,
                        });
                        continue;
                    }
                    // `r#ident` raw identifier: fall through, scan ident.
                }
                if byte_str {
                    cur.bump();
                    cur.bump();
                    cur.string_literal(b'"');
                    out.tokens.push(Tok {
                        kind: TokKind::Literal,
                        text: LITERAL_PLACEHOLDER.to_owned(),
                        line,
                    });
                    continue;
                } else if byte_char {
                    cur.bump();
                    cur.bump();
                    cur.char_literal();
                    out.tokens.push(Tok {
                        kind: TokKind::Literal,
                        text: LITERAL_PLACEHOLDER.to_owned(),
                        line,
                    });
                    continue;
                }
                while cur.peek().is_some_and(|n| is_ident_continue(n as char)) {
                    cur.bump();
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..cur.pos].to_owned(),
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                let start = cur.pos;
                cur.bump();
                while cur.peek().is_some_and(|n| {
                    is_ident_continue(n as char)
                        || n == b'.'
                            && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit())
                            && !src[start..cur.pos].contains('.')
                }) {
                    cur.bump();
                }
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: src[start..cur.pos].to_owned(),
                    line,
                });
            }
            _ => {
                cur.bump();
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
            }
        }
    }

    // Resolve standalone directives to the next line holding a token.
    for (d, standalone) in out.directives.iter_mut().zip(&own_line) {
        if *standalone {
            d.applies_to = out
                .tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > d.line)
                .unwrap_or(d.line);
        }
    }
    out
}
