//! CLI for flowtune-lint.
//!
//! ```text
//! cargo run -p flowtune-lint --            # human output, exit 1 on findings
//! cargo run -p flowtune-lint -- --json     # machine output for CI
//! cargo run -p flowtune-lint -- --baseline # also list suppressed findings
//! cargo run -p flowtune-lint -- --root X   # lint a different workspace root
//! ```
//!
//! Exit codes: 0 clean, 1 unsuppressed findings, 2 usage or I/O error.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut baseline = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--baseline" => baseline = true,
            "--root" => match args.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => {
                    eprintln!("flowtune-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "flowtune-lint [--json] [--baseline] [--root <workspace>]\n\
                     rules: hot-path-alloc, panic, wire-exhaustive, float-determinism\n\
                     suppress with: // flowtune-lint: allow(<rule>, \"<why>\")"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("flowtune-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(find_workspace_root);
    let findings = match flowtune_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("flowtune-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let text = if json {
        flowtune_lint::report::json_report(&findings, baseline)
    } else {
        flowtune_lint::report::human_report(&findings, baseline)
    };
    print!("{text}");
    if findings.iter().any(|f| f.suppressed.is_none()) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Walk up from the current directory to the first `Cargo.toml`
/// declaring `[workspace]`.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
