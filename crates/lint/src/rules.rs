//! The rule families and their workspace scope configuration.
//!
//! Every rule is repo-specific: the scopes below name the modules (and,
//! within them, the functions) whose invariants the runtime test suite
//! pins — the zero-allocation steady state, panic-free decode, the
//! bit-for-bit equivalence that nondeterministic map iteration would
//! break. Amend the tables here when a module joins a hot path; the
//! procedure is documented in ARCHITECTURE.md §Static analysis.

use crate::analysis::{analyze, enclosing_fn, Analysis, FnSpan};
use crate::lexer::{lex, Lexed, Tok, TokKind};

/// Canonical rule names, also accepted in `allow(...)` directives.
pub const RULES: &[&str] = &[
    "hot-path-alloc",
    "panic",
    "wire-exhaustive",
    "float-determinism",
    "directive",
];

/// One reported finding (suppression not yet applied).
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// 1-based source line.
    pub line: u32,
    /// Rule family name (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

// ------------------------------------------------------------- scopes

/// A module on the zero-allocation steady-state path, with the
/// functions that path runs. `crates/net/tests/zero_alloc.rs` proves
/// the discipline on the code these functions execute; the lint extends
/// it to the branches the test never takes.
pub struct HotModule {
    /// Path relative to the workspace root.
    pub path: &'static str,
    /// Steady-state functions inside that module.
    pub hot_fns: &'static [&'static str],
}

/// The designated steady-state modules (ISSUE: the allocator tick, the
/// exchange, and the transport recv paths).
pub const HOT_MODULES: &[HotModule] = &[
    HotModule {
        path: "crates/alloc/src/serial.rs",
        hot_fns: &[
            "iterate",
            "iterate_full",
            "iterate_incremental",
            "rate_phase_full",
            "rate_phase_dirty",
            "aggregate_and_price",
            "diff_and_mark",
            "distribute",
            "normalize_phase_full",
            "normalize_phase_dirty",
            "run_iterations",
            "rates_into",
            "take_changed_rates",
            "link_loads_into",
            "link_hessians_into",
            "link_prices_into",
            "set_background_loads",
            "set_background_hessians",
            "set_link_prices",
        ],
    },
    HotModule {
        path: "crates/alloc/src/engine.rs",
        hot_fns: &[
            "iterate",
            "run_iterations",
            "rates_into",
            "take_changed_rates",
            "link_loads_into",
            "link_hessians_into",
            "link_prices_into",
            "set_background_loads",
            "set_background_hessians",
            "set_link_prices",
        ],
    },
    HotModule {
        path: "crates/alloc/src/dirty.rs",
        hot_fns: &["note_add", "note_remove", "mark_intake", "drain_intake"],
    },
    HotModule {
        path: "crates/alloc/src/parallel.rs",
        hot_fns: &[
            "iterate",
            "run_iterations",
            "rates_into",
            "take_changed_rates",
            "link_loads_into",
            "link_hessians_into",
            "link_prices_into",
            "set_background_loads",
            "set_background_hessians",
            "set_link_prices",
        ],
    },
    HotModule {
        path: "crates/core/src/service.rs",
        hot_fns: &[
            "tick",
            "export_all",
            "export_changed",
            "rates_into",
            "link_loads_into",
            "link_hessians_into",
            "link_prices_into",
            "set_background_loads",
            "set_background_hessians",
            "set_link_prices",
        ],
    },
    HotModule {
        path: "crates/core/src/exchange.rs",
        hot_fns: &[
            "begin_round",
            "apply_frame",
            "install",
            "nonzero_at",
            "request_resync",
        ],
    },
    HotModule {
        path: "crates/core/src/sharded.rs",
        hot_fns: &["tick", "try_tick", "exchange_link_state"],
    },
    HotModule {
        path: "crates/core/src/driver.rs",
        hot_fns: &["tick", "try_tick", "merge_by_token"],
    },
    HotModule {
        path: "crates/core/src/scenario.rs",
        hot_fns: &["drain_and_sample"],
    },
    HotModule {
        path: "crates/net/src/transport.rs",
        hot_fns: &["send", "recv", "read_full"],
    },
    HotModule {
        path: "crates/net/src/peer.rs",
        hot_fns: &[
            "tick_export",
            "exchange_finish",
            "collect_slot",
            "tick_into",
            "broadcast_frame_buf",
        ],
    },
    HotModule {
        path: "crates/net/src/runtime.rs",
        hot_fns: &["receive_loop", "pop_with", "recycle"],
    },
    HotModule {
        path: "crates/net/src/cluster.rs",
        hot_fns: &["try_tick", "try_tick_into", "tick"],
    },
];

/// Where every failure must surface as an error value, never a panic:
/// the whole `flowtune-proto` crate, plus the decode/receive functions
/// of the net crate and the core exchange.
pub struct PanicScope {
    /// Path relative to the workspace root.
    pub path: &'static str,
    /// Functions covered; empty slice = every function in the file.
    pub fns: &'static [&'static str],
}

/// Panic-freedom scopes.
pub const PANIC_SCOPES: &[PanicScope] = &[
    PanicScope {
        path: "crates/proto/src/",
        fns: &[],
    },
    PanicScope {
        path: "crates/net/src/transport.rs",
        fns: &["recv", "read_full", "stream"],
    },
    PanicScope {
        path: "crates/net/src/peer.rs",
        fns: &[
            "exchange_finish",
            "collect_slot",
            "closed_error",
            "gather_epoch",
        ],
    },
    PanicScope {
        path: "crates/net/src/runtime.rs",
        fns: &[
            "receive_loop",
            "pop_with",
            "recycle",
            "take_failure",
            "lock",
        ],
    },
    PanicScope {
        path: "crates/net/src/cluster.rs",
        fns: &["try_tick", "try_tick_into"],
    },
    PanicScope {
        path: "crates/core/src/exchange.rs",
        fns: &["apply_frame"],
    },
];

/// Pricing / exchange / export modules whose outputs the equivalence
/// tests pin bit-for-bit — `HashMap`/`HashSet` iteration order must
/// never reach them.
pub const FLOAT_DET_FILES: &[&str] = &[
    "crates/alloc/src/serial.rs",
    "crates/alloc/src/gradient.rs",
    "crates/alloc/src/parallel.rs",
    "crates/core/src/service.rs",
    "crates/core/src/sharded.rs",
    "crates/core/src/exchange.rs",
    "crates/net/src/peer.rs",
    "crates/net/src/cluster.rs",
    "crates/proto/src/filter.rs",
];

/// Files holding wire-protocol tag constants to cross-check.
pub const WIRE_FILES: &[&str] = &["crates/proto/src/exchange.rs", "crates/proto/src/codec.rs"];

// ------------------------------------------------------------ helpers

fn tok(toks: &[Tok], i: usize) -> Option<&Tok> {
    toks.get(i)
}

fn is_path_sep(toks: &[Tok], i: usize) -> bool {
    // `::` lexes as two `:` puncts.
    tok(toks, i).is_some_and(|t| t.is_punct(':'))
        && tok(toks, i + 1).is_some_and(|t| t.is_punct(':'))
}

/// Does `path` (workspace-relative, `/`-separated) fall in `scope`?
/// A scope ending in `/` is a directory prefix, otherwise exact match.
fn in_scope(path: &str, scope: &str) -> bool {
    if let Some(dir) = scope.strip_suffix('/') {
        path.starts_with(dir) && path.len() > dir.len()
    } else {
        path == scope
    }
}

// ------------------------------------------------------- rule: alloc

/// Container types whose constructors allocate (or start a growth
/// trajectory that will).
const ALLOC_TYPES: &[&str] = &[
    "Vec", "Box", "String", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "VecDeque",
];
/// Constructor names flagged on those types.
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];
/// Allocating method calls flagged anywhere in a hot function.
const ALLOC_METHODS: &[&str] = &["to_vec", "to_string", "to_owned", "collect", "clone"];
/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

fn hot_path_alloc(path: &str, lexed: &Lexed, an: &Analysis, out: &mut Vec<RawFinding>) {
    let Some(module) = HOT_MODULES.iter().find(|m| in_scope(path, m.path)) else {
        return;
    };
    let toks = &lexed.tokens;
    for f in an
        .fns
        .iter()
        .filter(|f| module.hot_fns.contains(&f.name.as_str()) && !an.tests.contains(f.line))
    {
        for i in f.body_start..f.body_end.min(toks.len()) {
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            // `vec![…]` / `format!(…)`
            if ALLOC_MACROS.contains(&t.text.as_str())
                && tok(toks, i + 1).is_some_and(|n| n.is_punct('!'))
            {
                out.push(RawFinding {
                    line: t.line,
                    rule: "hot-path-alloc",
                    message: format!("`{}!` allocates on the steady-state path", t.text),
                });
                continue;
            }
            // `Vec::new(…)`, `Box::new`, `String::from`, …
            if ALLOC_TYPES.contains(&t.text.as_str()) && is_path_sep(toks, i + 1) {
                if let Some(m) = tok(toks, i + 3) {
                    if m.kind == TokKind::Ident && ALLOC_CTORS.contains(&m.text.as_str()) {
                        out.push(RawFinding {
                            line: t.line,
                            rule: "hot-path-alloc",
                            message: format!(
                                "`{}::{}` allocates on the steady-state path",
                                t.text, m.text
                            ),
                        });
                        continue;
                    }
                }
            }
            // `.to_vec()`, `.collect()`, `.clone()`, …
            if ALLOC_METHODS.contains(&t.text.as_str())
                && i > 0
                && toks[i - 1].is_punct('.')
                && tok(toks, i + 1).is_some_and(|n| n.is_punct('(') || n.is_punct(':'))
            {
                out.push(RawFinding {
                    line: t.line,
                    rule: "hot-path-alloc",
                    message: format!(
                        "`.{}()` allocates on the steady-state path (heap clone/collect)",
                        t.text
                    ),
                });
            }
        }
    }
}

// ------------------------------------------------------- rule: panic

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn panic_freedom(path: &str, lexed: &Lexed, an: &Analysis, out: &mut Vec<RawFinding>) {
    let scopes: Vec<&PanicScope> = PANIC_SCOPES
        .iter()
        .filter(|s| in_scope(path, s.path))
        .collect();
    if scopes.is_empty() {
        return;
    }
    let covered = |f: &FnSpan| {
        scopes
            .iter()
            .any(|s| s.fns.is_empty() || s.fns.contains(&f.name.as_str()))
    };
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if an.tests.contains(t.line) {
            continue;
        }
        let Some(f) = enclosing_fn(&an.fns, i) else {
            continue;
        };
        if !covered(f) {
            continue;
        }
        match t.kind {
            TokKind::Ident
                if (t.text == "unwrap" || t.text == "expect")
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && tok(toks, i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                out.push(RawFinding {
                    line: t.line,
                    rule: "panic",
                    message: format!(
                        "`.{}()` can panic; surface a FrameError/DecodeError/TransportError instead",
                        t.text
                    ),
                });
            }
            TokKind::Ident
                if PANIC_MACROS.contains(&t.text.as_str())
                    && tok(toks, i + 1).is_some_and(|n| n.is_punct('!')) =>
            {
                out.push(RawFinding {
                    line: t.line,
                    rule: "panic",
                    message: format!("`{}!` panics on a decode/receive path", t.text),
                });
            }
            TokKind::Punct if t.is_punct('[') && i > 0 => {
                // Slice/array index without `.get()`: `expr[…]` where the
                // preceding token ends an expression. `#[attr]`, types
                // (`[u8; 4]`) and slice patterns keep a punct before `[`.
                let prev = &toks[i - 1];
                let is_index = prev.kind == TokKind::Ident
                    && !is_keyword_before_bracket(&prev.text)
                    || prev.is_punct(')')
                    || prev.is_punct(']');
                if is_index {
                    out.push(RawFinding {
                        line: t.line,
                        rule: "panic",
                        message: "slice index can panic; use `.get()` or justify the bound"
                            .to_owned(),
                    });
                }
            }
            _ => {}
        }
    }
}

/// Keywords that may directly precede `[` without forming an index
/// expression (`return [..]`, `in [..]`, `match [..]` …).
fn is_keyword_before_bracket(s: &str) -> bool {
    matches!(
        s,
        "return" | "in" | "match" | "if" | "while" | "else" | "mut" | "dyn" | "as" | "break"
    )
}

// -------------------------------------------------- rule: float-det

const MAP_TYPES: &[&str] = &["HashMap", "HashSet"];
const ORDER_SENSITIVE_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "retain",
];

fn float_determinism(path: &str, lexed: &Lexed, an: &Analysis, out: &mut Vec<RawFinding>) {
    if !FLOAT_DET_FILES.iter().any(|f| in_scope(path, f)) {
        return;
    }
    let toks = &lexed.tokens;
    // Pass 1: names bound to HashMap/HashSet — `name: HashMap<..>`
    // fields/params and `let [mut] name = …HashMap…;` bindings.
    let mut maps: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident && tok(toks, i + 1).is_some_and(|n| n.is_punct(':')) {
            // look ahead a short window for a map type before a
            // delimiter ends the declaration
            for a in toks.iter().take(i + 10).skip(i + 2) {
                if a.is_punct(',') || a.is_punct(';') || a.is_punct(')') || a.is_punct('{') {
                    break;
                }
                if a.kind == TokKind::Ident && MAP_TYPES.contains(&a.text.as_str()) {
                    maps.push(t.text.clone());
                    break;
                }
            }
        }
        if t.is_ident("let") {
            let mut j = i + 1;
            if tok(toks, j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            if let Some(name) = tok(toks, j).filter(|n| n.kind == TokKind::Ident) {
                for a in toks.iter().take(j + 16).skip(j + 1) {
                    if a.is_punct(';') {
                        break;
                    }
                    if a.kind == TokKind::Ident && MAP_TYPES.contains(&a.text.as_str()) {
                        maps.push(name.text.clone());
                        break;
                    }
                }
            }
        }
    }
    maps.sort();
    maps.dedup();
    // Pass 2: order-sensitive iteration over any of those names.
    for i in 0..toks.len() {
        let t = &toks[i];
        if an.tests.contains(t.line) {
            continue;
        }
        if t.kind == TokKind::Ident
            && ORDER_SENSITIVE_METHODS.contains(&t.text.as_str())
            && i >= 2
            && toks[i - 1].is_punct('.')
            && toks[i - 2].kind == TokKind::Ident
            && maps.contains(&toks[i - 2].text)
            && tok(toks, i + 1).is_some_and(|n| n.is_punct('('))
        {
            out.push(RawFinding {
                line: t.line,
                rule: "float-determinism",
                message: format!(
                    "`{}.{}()` iterates a hash map in nondeterministic order on a \
                     pricing/exchange/export path",
                    toks[i - 2].text,
                    t.text
                ),
            });
        }
        // `for x in &map` / `for x in map`
        if t.is_ident("for") {
            let mut j = i + 1;
            let mut saw_in = false;
            while j < toks.len() && j < i + 40 {
                let a = &toks[j];
                if a.is_punct('{') {
                    break;
                }
                if a.is_ident("in") {
                    saw_in = true;
                } else if saw_in
                    && a.kind == TokKind::Ident
                    && maps.contains(&a.text)
                    && !tok(toks, j + 1).is_some_and(|n| n.is_punct('.'))
                {
                    out.push(RawFinding {
                        line: a.line,
                        rule: "float-determinism",
                        message: format!(
                            "`for … in {}` iterates a hash map in nondeterministic order on a \
                             pricing/exchange/export path",
                            a.text
                        ),
                    });
                    break;
                }
                j += 1;
            }
        }
    }
}

// ---------------------------------------------------- rule: wire

/// Byte widths of the append helpers used by the proto encoders.
const PUT_SIZES: &[(&str, usize)] = &[
    ("push", 1),
    ("put_u8", 1),
    ("put_u16", 2),
    ("put_u24", 3),
    ("put_u32", 4),
    ("put_u64", 8),
];

fn wire_exhaustive(path: &str, lexed: &Lexed, an: &Analysis, out: &mut Vec<RawFinding>) {
    if !WIRE_FILES.iter().any(|f| in_scope(path, f)) {
        return;
    }
    let toks = &lexed.tokens;
    // Collect `const TAG_X: u8 = N;` (outside tests).
    struct TagConst {
        name: String,
        value: Option<u64>,
        line: u32,
    }
    let mut tags: Vec<TagConst> = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_ident("const")
            && tok(toks, i + 1)
                .is_some_and(|n| n.kind == TokKind::Ident && n.text.starts_with("TAG_"))
            && !an.tests.contains(t.line)
        {
            let name = toks[i + 1].text.clone();
            // value: first numeric literal before the `;`
            let mut value = None;
            for a in toks.iter().take(i + 10).skip(i + 2) {
                if a.is_punct(';') {
                    break;
                }
                if a.kind == TokKind::Literal {
                    value = parse_int(&a.text);
                    break;
                }
            }
            tags.push(TagConst {
                name,
                value,
                line: t.line,
            });
        }
    }
    if tags.is_empty() {
        return;
    }
    // Duplicate tag values.
    for (a, tc) in tags.iter().enumerate() {
        if let Some(v) = tc.value {
            if tags[..a].iter().any(|p| p.value == Some(v)) {
                out.push(RawFinding {
                    line: tc.line,
                    rule: "wire-exhaustive",
                    message: format!(
                        "record tag `{}` reuses value {v} of an earlier tag",
                        tc.name
                    ),
                });
            }
        }
    }
    // Usage classification: encode = argument of push/put_u8; decode =
    // match-arm pattern (`TAG_X =>` or `TAG_X |` / `| TAG_X`).
    for tc in &tags {
        let mut encoded = false;
        let mut decoded = false;
        for i in 0..toks.len() {
            let t = &toks[i];
            if !(t.kind == TokKind::Ident && t.text == tc.name) || an.tests.contains(t.line) {
                continue;
            }
            if i >= 2
                && toks[i - 1].is_punct('(')
                && (toks[i - 2].is_ident("push") || toks[i - 2].is_ident("put_u8"))
            {
                encoded = true;
            }
            let arrow_next = tok(toks, i + 1).is_some_and(|n| n.is_punct('='))
                && tok(toks, i + 2).is_some_and(|n| n.is_punct('>'));
            let or_adjacent = tok(toks, i + 1).is_some_and(|n| n.is_punct('|'))
                || (i > 0 && toks[i - 1].is_punct('|'));
            if arrow_next || or_adjacent {
                decoded = true;
            }
        }
        if encoded && !decoded {
            out.push(RawFinding {
                line: tc.line,
                rule: "wire-exhaustive",
                message: format!(
                    "record tag `{}` is encoded but never matched by a decode arm — a frame \
                     carrying it will fail to decode",
                    tc.name
                ),
            });
        }
        if decoded && !encoded {
            out.push(RawFinding {
                line: tc.line,
                rule: "wire-exhaustive",
                message: format!(
                    "record tag `{}` is decoded but never emitted by an encoder — dead \
                     protocol surface or a missing encode arm",
                    tc.name
                ),
            });
        }
        if !decoded && !encoded {
            out.push(RawFinding {
                line: tc.line,
                rule: "wire-exhaustive",
                message: format!("record tag `{}` is neither encoded nor decoded", tc.name),
            });
        }
    }
    // Header-size agreement: the bytes `encode_header` appends must
    // total the declared header-size constant.
    header_size_check(lexed, an, "encode_header", "FRAME_HEADER_BYTES", out);
}

fn header_size_check(
    lexed: &Lexed,
    an: &Analysis,
    encode_fn: &str,
    size_const: &str,
    out: &mut Vec<RawFinding>,
) {
    let toks = &lexed.tokens;
    let Some(f) = an.fns.iter().find(|f| f.name == encode_fn) else {
        return;
    };
    let mut declared = None;
    for i in 0..toks.len() {
        if toks[i].is_ident("const") && tok(toks, i + 1).is_some_and(|n| n.is_ident(size_const)) {
            for a in toks.iter().take(i + 10).skip(i + 2) {
                if a.is_punct(';') {
                    break;
                }
                if a.kind == TokKind::Literal {
                    declared = parse_int(&a.text);
                    break;
                }
            }
        }
    }
    let Some(declared) = declared else { return };
    let mut total = 0u64;
    for i in f.body_start..f.body_end.min(toks.len()) {
        let t = &toks[i];
        if t.kind == TokKind::Ident && tok(toks, i + 1).is_some_and(|n| n.is_punct('(')) {
            if let Some(&(_, size)) = PUT_SIZES.iter().find(|&&(n, _)| n == t.text) {
                total += size as u64;
            }
        }
    }
    if total != declared {
        out.push(RawFinding {
            line: f.line,
            rule: "wire-exhaustive",
            message: format!(
                "`{encode_fn}` appends {total} bytes but `{size_const}` declares {declared} — \
                 header size constants disagree"
            ),
        });
    }
}

fn parse_int(s: &str) -> Option<u64> {
    let s = s.replace('_', "");
    let s = s
        .trim_end_matches(|c: char| c.is_ascii_alphabetic())
        .to_owned();
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

// -------------------------------------------------------- entry point

/// Run every rule family over one file. `path` must be workspace-
/// relative with `/` separators (it selects the rule scopes).
pub fn lint_source(path: &str, source: &str) -> (Vec<RawFinding>, Lexed) {
    let lexed = lex(source);
    let an = analyze(&lexed);
    let mut out = Vec::new();
    hot_path_alloc(path, &lexed, &an, &mut out);
    panic_freedom(path, &lexed, &an, &mut out);
    float_determinism(path, &lexed, &an, &mut out);
    wire_exhaustive(path, &lexed, &an, &mut out);
    validate_directives(&lexed, &mut out);
    out.sort_by_key(|f| (f.line, f.rule));
    (out, lexed)
}

/// A malformed suppression is itself a finding (and can never be
/// suppressed): unknown rule name, or no justification string.
fn validate_directives(lexed: &Lexed, out: &mut Vec<RawFinding>) {
    for d in &lexed.directives {
        if !RULES.contains(&d.rule.as_str()) {
            out.push(RawFinding {
                line: d.line,
                rule: "directive",
                message: format!(
                    "suppression names unknown rule `{}` (known: {})",
                    d.rule,
                    RULES.join(", ")
                ),
            });
        } else if d.reason.is_none() {
            out.push(RawFinding {
                line: d.line,
                rule: "directive",
                message: format!(
                    "suppression of `{}` has no justification — write \
                     `flowtune-lint: allow({}, \"why this is sound\")`",
                    d.rule, d.rule
                ),
            });
        }
    }
}
