//! Suppression application and the human / JSON reporters.

use crate::lexer::Lexed;
use crate::rules::RawFinding;

/// A finding attributed to a file, after suppression processing.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule family.
    pub rule: &'static str,
    /// Description.
    pub message: String,
    /// `Some(justification)` when an `allow` directive silenced it.
    pub suppressed: Option<String>,
}

/// Apply `// flowtune-lint: allow(rule, "why")` directives to the raw
/// findings of one file. A directive silences findings of its rule on
/// the line it applies to — but only when it carries a justification;
/// malformed directives were already turned into findings by the rule
/// pass, and `directive` findings themselves can never be suppressed.
pub fn apply_suppressions(file: &str, raw: Vec<RawFinding>, lexed: &Lexed) -> Vec<Finding> {
    raw.into_iter()
        .map(|f| {
            let suppressed = if f.rule == "directive" {
                None
            } else {
                lexed
                    .directives
                    .iter()
                    .find(|d| d.rule == f.rule && d.applies_to == f.line && d.reason.is_some())
                    .and_then(|d| d.reason.clone())
            };
            Finding {
                file: file.to_owned(),
                line: f.line,
                rule: f.rule,
                message: f.message,
                suppressed,
            }
        })
        .collect()
}

/// Render findings for a terminal. Returns the report text.
pub fn human_report(findings: &[Finding], baseline: bool) -> String {
    let mut out = String::new();
    for f in findings.iter().filter(|f| f.suppressed.is_none()) {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.file, f.line, f.rule, f.message
        ));
    }
    let unsuppressed = findings.iter().filter(|f| f.suppressed.is_none()).count();
    let suppressed = findings.len() - unsuppressed;
    if baseline {
        out.push_str("suppressed findings (baseline):\n");
        for f in findings.iter().filter(|f| f.suppressed.is_some()) {
            out.push_str(&format!(
                "  {}:{}: [{}] allowed: {}\n",
                f.file,
                f.line,
                f.rule,
                f.suppressed.as_deref().unwrap_or("")
            ));
        }
    }
    out.push_str(&format!(
        "flowtune-lint: {unsuppressed} finding{} ({suppressed} suppressed)\n",
        if unsuppressed == 1 { "" } else { "s" }
    ));
    out
}

/// Render findings as JSON (no serde in the container; the shape is
/// simple enough to emit by hand).
pub fn json_report(findings: &[Finding], baseline: bool) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("{\n  \"findings\": [");
    let unsup: Vec<&Finding> = findings.iter().filter(|f| f.suppressed.is_none()).collect();
    for (i, f) in unsup.iter().enumerate() {
        out.push_str(&format!(
            "{}\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            if i == 0 { "" } else { "," },
            esc(&f.file),
            f.line,
            f.rule,
            esc(&f.message)
        ));
    }
    if !unsup.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    if baseline {
        out.push_str("  \"suppressed\": [");
        let sup: Vec<&Finding> = findings.iter().filter(|f| f.suppressed.is_some()).collect();
        for (i, f) in sup.iter().enumerate() {
            out.push_str(&format!(
                "{}\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"reason\": \"{}\"}}",
                if i == 0 { "" } else { "," },
                esc(&f.file),
                f.line,
                f.rule,
                esc(f.suppressed.as_deref().unwrap_or(""))
            ));
        }
        if !sup.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
    }
    let suppressed_total = findings.iter().filter(|f| f.suppressed.is_some()).count();
    out.push_str(&format!(
        "  \"total_unsuppressed\": {},\n  \"total_suppressed\": {}\n}}\n",
        unsup.len(),
        suppressed_total
    ));
    out
}
