//! Per-rule fixture tests: for each family, one fixture fires, one is
//! suppressed with a justification, one is clean. The fixture's virtual
//! path places it inside the rule's workspace scope.

use flowtune_lint::lint_file;
use flowtune_lint::report::Finding;

fn unsuppressed(findings: &[Finding]) -> Vec<&Finding> {
    findings.iter().filter(|f| f.suppressed.is_none()).collect()
}

fn lines_of(findings: &[&Finding], rule: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

// ----------------------------------------------------- hot-path-alloc

#[test]
fn hot_alloc_fires_on_hot_functions_only() {
    let findings = lint_file(
        "crates/alloc/src/dirty.rs",
        include_str!("fixtures/hot_alloc_fires.rs"),
    );
    let live = unsuppressed(&findings);
    assert_eq!(
        lines_of(&live, "hot-path-alloc"),
        vec![11, 12, 13],
        "{live:?}"
    );
}

#[test]
fn hot_alloc_suppressed_by_justified_allow() {
    let findings = lint_file(
        "crates/alloc/src/dirty.rs",
        include_str!("fixtures/hot_alloc_suppressed.rs"),
    );
    assert!(unsuppressed(&findings).is_empty(), "{findings:?}");
    // Both the trailing and the own-line directive actually matched.
    assert_eq!(
        findings.iter().filter(|f| f.suppressed.is_some()).count(),
        2,
        "{findings:?}"
    );
}

#[test]
fn hot_alloc_clean_reuse_passes() {
    let findings = lint_file(
        "crates/alloc/src/dirty.rs",
        include_str!("fixtures/hot_alloc_clean.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn hot_alloc_ignores_files_outside_scope() {
    // The same allocating code in a module that is not on the hot list
    // produces nothing.
    let findings = lint_file(
        "crates/topo/src/build.rs",
        include_str!("fixtures/hot_alloc_fires.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

// -------------------------------------------------------------- panic

#[test]
fn panic_fires_in_proto_scope() {
    let findings = lint_file(
        "crates/proto/src/fixture.rs",
        include_str!("fixtures/panic_fires.rs"),
    );
    let live = unsuppressed(&findings);
    assert_eq!(lines_of(&live, "panic"), vec![6, 7, 9], "{live:?}");
}

#[test]
fn panic_suppressed_by_justified_allow() {
    let findings = lint_file(
        "crates/proto/src/fixture.rs",
        include_str!("fixtures/panic_suppressed.rs"),
    );
    assert!(unsuppressed(&findings).is_empty(), "{findings:?}");
    assert_eq!(findings.len(), 1);
    assert_eq!(
        findings[0].suppressed.as_deref(),
        Some("caller guarantees a non-empty header")
    );
}

#[test]
fn panic_clean_error_returns_pass() {
    let findings = lint_file(
        "crates/proto/src/fixture.rs",
        include_str!("fixtures/panic_clean.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

// ----------------------------------------------------- wire-exhaustive

#[test]
fn wire_fires_on_one_sided_tags_and_header_mismatch() {
    let findings = lint_file(
        "crates/proto/src/exchange.rs",
        include_str!("fixtures/wire_fires.rs"),
    );
    let live = unsuppressed(&findings);
    let wire = lines_of(&live, "wire-exhaustive");
    // line 5: encoder-only TAG_ORPHAN; line 6: decoder-only TAG_GHOST;
    // line 7 twice: TAG_CLASH duplicates value 1 and is unused;
    // line 17: encode_header appends 3 bytes, declared 5.
    assert_eq!(wire, vec![5, 6, 7, 7, 17], "{live:?}");
    assert!(live.iter().any(|f| f.message.contains("TAG_ORPHAN")));
    assert!(live.iter().any(|f| f.message.contains("TAG_GHOST")));
    assert!(live.iter().any(|f| f.message.contains("reuses value 1")));
    assert!(live
        .iter()
        .any(|f| f.message.contains("appends 3 bytes") && f.message.contains("declares 5")));
}

#[test]
fn wire_suppressed_by_justified_allow() {
    let findings = lint_file(
        "crates/proto/src/exchange.rs",
        include_str!("fixtures/wire_suppressed.rs"),
    );
    assert!(unsuppressed(&findings).is_empty(), "{findings:?}");
    assert_eq!(findings.len(), 1);
}

#[test]
fn wire_clean_two_sided_tags_pass() {
    let findings = lint_file(
        "crates/proto/src/exchange.rs",
        include_str!("fixtures/wire_clean.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

// --------------------------------------------------- float-determinism

#[test]
fn float_det_fires_on_hashmap_iteration() {
    let findings = lint_file(
        "crates/core/src/service.rs",
        include_str!("fixtures/float_fires.rs"),
    );
    let live = unsuppressed(&findings);
    assert_eq!(
        lines_of(&live, "float-determinism"),
        vec![13, 21],
        "{live:?}"
    );
}

#[test]
fn float_det_suppressed_by_justified_allow() {
    let findings = lint_file(
        "crates/core/src/service.rs",
        include_str!("fixtures/float_suppressed.rs"),
    );
    assert!(unsuppressed(&findings).is_empty(), "{findings:?}");
    assert_eq!(findings.len(), 1);
}

#[test]
fn float_det_clean_btreemap_passes() {
    let findings = lint_file(
        "crates/core/src/service.rs",
        include_str!("fixtures/float_clean.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

// ----------------------------------------------- directive validation

#[test]
fn unjustified_suppression_is_a_finding_and_does_not_suppress() {
    let src = "pub fn f(buf: &[u8]) -> u8 {\n    buf[0] // flowtune-lint: allow(panic)\n}\n";
    let findings = lint_file("crates/proto/src/fixture.rs", src);
    let live = unsuppressed(&findings);
    assert!(
        live.iter().any(|f| f.rule == "directive"),
        "missing-justification finding: {live:?}"
    );
    assert!(
        live.iter().any(|f| f.rule == "panic" && f.line == 2),
        "the unjustified allow must not suppress: {live:?}"
    );
}

#[test]
fn unknown_rule_in_suppression_is_a_finding() {
    let src = "// flowtune-lint: allow(made-up-rule, \"because\")\npub fn f() {}\n";
    let findings = lint_file("crates/proto/src/fixture.rs", src);
    let live = unsuppressed(&findings);
    assert_eq!(live.len(), 1, "{live:?}");
    assert_eq!(live[0].rule, "directive");
    assert!(live[0].message.contains("made-up-rule"));
}
