//! Deliberate-regression tests: take the real workspace sources, inject
//! one violation, and prove the rule catches it at the expected
//! file:line. This is the evidence that each rule family can actually
//! fail — a lint that never fires is indistinguishable from no lint.

use flowtune_lint::lint_file;
use flowtune_lint::report::Finding;

/// Read a real workspace source file (tests run from crates/lint).
fn workspace_source(rel: &str) -> String {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    std::fs::read_to_string(format!("{root}/{rel}")).unwrap_or_else(|e| panic!("read {rel}: {e}"))
}

fn unsuppressed(findings: Vec<Finding>) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| f.suppressed.is_none())
        .collect()
}

/// Inject `payload` on a new line directly after the first line that
/// contains `anchor`. Returns (source, 1-based line of the injection).
fn inject_after(src: &str, anchor: &str, payload: &str) -> (String, u32) {
    let mut out = String::with_capacity(src.len() + payload.len() + 1);
    let mut injected_at = None;
    for (idx, line) in src.lines().enumerate() {
        out.push_str(line);
        out.push('\n');
        if injected_at.is_none() && line.contains(anchor) {
            out.push_str(payload);
            out.push('\n');
            injected_at = Some(idx as u32 + 2);
        }
    }
    (
        out,
        injected_at.unwrap_or_else(|| panic!("anchor {anchor:?} not found")),
    )
}

#[test]
fn real_workspace_files_start_clean() {
    // The injections below only prove anything if the unmodified files
    // carry no unsuppressed findings to begin with.
    for rel in [
        "crates/alloc/src/serial.rs",
        "crates/proto/src/exchange.rs",
        "crates/proto/src/codec.rs",
        "crates/core/src/service.rs",
    ] {
        let live = unsuppressed(lint_file(rel, &workspace_source(rel)));
        assert!(live.is_empty(), "{rel} not clean: {live:?}");
    }
}

#[test]
fn injected_format_in_hot_allocator_path_is_caught() {
    let rel = "crates/alloc/src/serial.rs";
    let src = workspace_source(rel);
    let (bad, line) = inject_after(
        &src,
        "fn rate_phase_full(",
        "        let _trace = format!(\"tick\");",
    );
    let live = unsuppressed(lint_file(rel, &bad));
    assert!(
        live.iter()
            .any(|f| f.rule == "hot-path-alloc" && f.line == line),
        "expected hot-path-alloc at line {line}: {live:?}"
    );
}

#[test]
fn injected_unwrap_in_proto_decode_is_caught() {
    let rel = "crates/proto/src/exchange.rs";
    let src = workspace_source(rel);
    let (bad, line) = inject_after(
        &src,
        "pub fn decode_header(",
        "        let _first = frame.first().unwrap();",
    );
    let live = unsuppressed(lint_file(rel, &bad));
    assert!(
        live.iter().any(|f| f.rule == "panic" && f.line == line),
        "expected panic at line {line}: {live:?}"
    );
}

#[test]
fn injected_encoder_only_tag_is_caught() {
    let rel = "crates/proto/src/exchange.rs";
    let src = workspace_source(rel);
    // A new record tag the encoder emits but no decode arm matches.
    let (bad, line) = inject_after(
        &src,
        "const TAG_MIGRATION",
        "pub const TAG_PHANTOM: u8 = 250;\npub fn encode_phantom(out: &mut Vec<u8>) { out.push(TAG_PHANTOM); }",
    );
    let live = unsuppressed(lint_file(rel, &bad));
    assert!(
        live.iter().any(|f| {
            f.rule == "wire-exhaustive" && f.line == line && f.message.contains("TAG_PHANTOM")
        }),
        "expected wire-exhaustive at line {line}: {live:?}"
    );
}

#[test]
fn injected_header_size_drift_is_caught() {
    let rel = "crates/proto/src/exchange.rs";
    let src = workspace_source(rel);
    // Grow the header by one byte without touching FRAME_HEADER_BYTES.
    let (bad, _line) = inject_after(&src, "pub fn encode_header(", "        out.push(0xEE);");
    let live = unsuppressed(lint_file(rel, &bad));
    assert!(
        live.iter()
            .any(|f| f.rule == "wire-exhaustive" && f.message.contains("header size")),
        "expected header-size disagreement: {live:?}"
    );
}

#[test]
fn injected_hashmap_iteration_in_pricing_is_caught() {
    let rel = "crates/core/src/service.rs";
    let src = workspace_source(rel);
    let (bad, line) = inject_after(
        &src,
        "fn export_all(",
        "        let audit: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();\n        for (_t, _r) in audit.iter() {}",
    );
    let live = unsuppressed(lint_file(rel, &bad));
    // The for-loop sits one line below the binding.
    assert!(
        live.iter()
            .any(|f| f.rule == "float-determinism" && f.line == line + 1),
        "expected float-determinism at line {}: {live:?}",
        line + 1
    );
}

#[test]
fn workspace_lint_runs_clean_end_to_end() {
    // The CI gate in miniature: zero unsuppressed findings across the
    // whole workspace.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let findings =
        flowtune_lint::lint_workspace(std::path::Path::new(root)).expect("workspace walk succeeds");
    let live: Vec<_> = findings.iter().filter(|f| f.suppressed.is_none()).collect();
    assert!(live.is_empty(), "unsuppressed findings: {live:#?}");
}
