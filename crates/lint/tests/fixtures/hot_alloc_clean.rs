// Fixture: a hot function that only reuses preallocated storage.

pub struct DirtySet {
    links: Vec<u32>,
    scratch: Vec<u32>,
}

impl DirtySet {
    pub fn note_add(&mut self, link: u32) {
        self.scratch.clear();
        if let Some(slot) = self.links.iter_mut().find(|l| **l == link) {
            *slot = link;
        } else {
            self.scratch.push(link);
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn allocating_in_tests_is_fine() {
        let v = vec![format!("tests may allocate")];
        assert_eq!(v.len(), 1);
    }
}
