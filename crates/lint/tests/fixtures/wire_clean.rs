// Fixture: every tag appears on both sides, header sizes agree.

pub const TAG_LINK: u8 = 1;
pub const TAG_RATE: u8 = 2;

pub const FRAME_HEADER_BYTES: usize = 3;

pub fn encode(out: &mut Vec<u8>) {
    out.push(TAG_LINK);
    out.push(TAG_RATE);
}

pub fn encode_header(out: &mut Buf) {
    out.push(1);
    out.put_u16(7);
}

pub fn decode(tag: u8) -> bool {
    match tag {
        TAG_LINK | TAG_RATE => true,
        _ => false,
    }
}
