// Fixture: an encoder-only tag silenced with a justification.

pub const TAG_LINK: u8 = 1;
// flowtune-lint: allow(wire-exhaustive, "probe record: receivers ignore it by design")
pub const TAG_PROBE: u8 = 9;

pub fn encode(out: &mut Vec<u8>) {
    out.push(TAG_LINK);
    out.push(TAG_PROBE);
}

pub fn decode(tag: u8) -> bool {
    match tag {
        TAG_LINK => true,
        _ => false,
    }
}
