// Fixture: deterministic structures only — BTreeMap iteration and
// dense Vec scans never depend on hasher state.

use std::collections::BTreeMap;

pub struct Exporter {
    rates: BTreeMap<u64, f64>,
    dense: Vec<f64>,
}

impl Exporter {
    pub fn total(&self) -> f64 {
        let mut total = 0.0;
        for (_token, rate) in self.rates.iter() {
            total += rate;
        }
        for rate in &self.dense {
            total += rate;
        }
        total
    }
}
