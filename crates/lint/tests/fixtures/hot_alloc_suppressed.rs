// Fixture: the same hot-function allocation, silenced by a justified
// suppression (trailing form and own-line form).

pub struct DirtySet {
    links: Vec<u32>,
}

impl DirtySet {
    pub fn note_add(&mut self, link: u32) {
        let copy = self.links.to_vec(); // flowtune-lint: allow(hot-path-alloc, "one-shot resync copy, not per-tick")
        // flowtune-lint: allow(hot-path-alloc, "grows once then reused")
        let fresh: Vec<u32> = Vec::with_capacity(link as usize);
        drop((copy, fresh));
    }
}
