// Fixture: a justified unchecked index in panic scope.

pub fn header_byte(buf: &[u8]) -> u8 {
    debug_assert!(!buf.is_empty());
    // flowtune-lint: allow(panic, "caller guarantees a non-empty header")
    buf[0]
}
