// Fixture: hash-map-order iteration feeding float accumulation.
// Linted under the virtual path crates/core/src/service.rs.

use std::collections::HashMap;

pub struct Exporter {
    rates: HashMap<u64, f64>,
}

impl Exporter {
    pub fn total(&self) -> f64 {
        let mut total = 0.0;
        for (_token, rate) in self.rates.iter() { // line 13: fires
            total += rate;
        }
        total
    }

    pub fn visit(&self) {
        let index: HashMap<u32, u32> = HashMap::new();
        for entry in &index { // line 21: fires (for-loop over a map)
            let _ = entry;
        }
    }
}
