// Fixture: wire-protocol defects. Linted under the virtual path
// crates/proto/src/exchange.rs so the wire-exhaustive rule applies.

pub const TAG_LINK: u8 = 1; // encoded and decoded: fine
pub const TAG_ORPHAN: u8 = 2; // line 5: encoded, never decoded — fires
pub const TAG_GHOST: u8 = 3; // line 6: decoded, never encoded — fires
pub const TAG_CLASH: u8 = 1; // line 7: reuses value 1 — fires

/// Declared header size disagrees with what encode_header appends.
pub const FRAME_HEADER_BYTES: usize = 5;

pub fn encode(out: &mut Vec<u8>) {
    out.push(TAG_LINK);
    out.push(TAG_ORPHAN);
}

pub fn encode_header(out: &mut Buf) {
    out.push(1); // 1 byte
    out.put_u16(7); // 2 bytes — totals 3, declared 5: fires at fn line
}

pub fn decode(tag: u8) -> bool {
    match tag {
        TAG_LINK => true,
        TAG_GHOST => true,
        _ => false,
    }
}
