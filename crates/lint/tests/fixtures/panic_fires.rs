// Fixture: panics reachable from a proto decode path. Linted under the
// virtual path crates/proto/src/fixture.rs, where every function is in
// panic scope.

pub fn decode_u16(buf: &[u8], off: usize) -> u16 {
    let hi = buf[off]; // line 6: fires (unchecked index)
    let lo = *buf.get(off + 1).unwrap(); // line 7: fires (unwrap)
    if off > buf.len() {
        unreachable!("checked above"); // line 9: fires (panicking macro)
    }
    u16::from_be_bytes([hi, lo])
}
