// Fixture: a decode path that surfaces every failure as an error.

/// Decode error.
pub enum DecodeError {
    /// Frame ended early.
    Truncated,
}

pub fn decode_u16(buf: &[u8], off: usize) -> Result<u16, DecodeError> {
    let hi = *buf.get(off).ok_or(DecodeError::Truncated)?;
    let lo = *buf.get(off + 1).ok_or(DecodeError::Truncated)?;
    Ok(u16::from_be_bytes([hi, lo]))
}
