// Fixture: allocating calls inside a designated hot function.
// Linted under the virtual path crates/alloc/src/dirty.rs, where
// `note_add` is on the steady-state list.

pub struct DirtySet {
    links: Vec<u32>,
}

impl DirtySet {
    pub fn note_add(&mut self, link: u32) {
        let label = format!("link {link}"); // line 11: fires
        let copy = self.links.to_vec(); // line 12: fires
        let fresh: Vec<u32> = Vec::new(); // line 13: fires
        drop((label, copy, fresh));
    }

    pub fn cold_setup(&mut self) {
        // Not a hot function: allocation here is fine.
        self.links = Vec::with_capacity(64);
    }
}
