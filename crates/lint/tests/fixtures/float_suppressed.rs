// Fixture: map iteration whose results are sorted before use.

use std::collections::HashMap;

pub struct Exporter {
    rates: HashMap<u64, f64>,
}

impl Exporter {
    pub fn sorted_tokens(&self, out: &mut Vec<u64>) {
        out.clear();
        // flowtune-lint: allow(float-determinism, "keys are sorted before any arithmetic")
        out.extend(self.rates.keys());
        out.sort_unstable();
    }
}
