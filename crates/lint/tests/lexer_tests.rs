//! Lexer corner cases: the tokens rules match against must survive raw
//! strings, nested comments, and the lifetime/char-literal ambiguity.

use flowtune_lint::lexer::{lex, TokKind, LITERAL_PLACEHOLDER};

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .into_iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text)
        .collect()
}

#[test]
fn raw_strings_are_opaque() {
    // An `unwrap` inside a raw string must not become an ident token.
    let src = r####"let s = r#"call .unwrap() here"#; s.len()"####;
    let ids = idents(src);
    assert!(!ids.contains(&"unwrap".to_owned()), "{ids:?}");
    assert!(ids.contains(&"len".to_owned()));
    let lexed = lex(src);
    assert!(lexed
        .tokens
        .iter()
        .any(|t| t.kind == TokKind::Literal && t.text == LITERAL_PLACEHOLDER));
}

#[test]
fn raw_strings_with_more_hashes_and_byte_prefixes() {
    let src = r#####"let a = r##"quote "# inside"##; let b = br#"bytes"#; let c = b"plain";"#####;
    let ids = idents(src);
    assert_eq!(
        ids,
        vec!["let", "a", "let", "b", "let", "c"],
        "literal bodies must not leak tokens"
    );
}

#[test]
fn raw_identifiers_are_not_raw_strings() {
    // `r#fn` is an identifier, not the opener of a raw string.
    let src = "let r#fn = 1; let x = r#fn + 2;";
    let ids = idents(src);
    assert!(
        ids.contains(&"r".to_owned()) || ids.contains(&"r#fn".to_owned()) || {
            // Whichever way the lexer splits it, the rest of the file must
            // still tokenize: both `let`s and the trailing `2` visible.
            false
        }
    );
    assert_eq!(ids.iter().filter(|i| *i == "let").count(), 2);
    let lexed = lex(src);
    assert!(lexed.tokens.iter().any(|t| t.text == "2"));
}

#[test]
fn nested_block_comments_close_correctly() {
    let src = "/* outer /* inner */ still comment */ fn after() {}";
    let ids = idents(src);
    assert_eq!(ids, vec!["fn", "after"]);
}

#[test]
fn lifetimes_vs_char_literals() {
    let src = "fn f<'a>(x: &'a str) -> char { 'a' }";
    let lexed = lex(src);
    let lifetimes: Vec<_> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .collect();
    assert_eq!(lifetimes.len(), 2, "{lexed:?}");
    assert!(lifetimes.iter().all(|t| t.text == "'a"));
    let chars = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Literal && t.text == LITERAL_PLACEHOLDER)
        .count();
    assert_eq!(chars, 1);
}

#[test]
fn escaped_quote_char_literal() {
    let src = r"let q = '\''; let n = '\n'; let u = '\u{1F600}'; done()";
    let ids = idents(src);
    assert!(ids.contains(&"done".to_owned()), "{ids:?}");
}

#[test]
fn numeric_literals_with_suffixes() {
    let src = "let a = 0xFF_u8; let b = 1_000_000; let c = 2.5f64; let d = 1.0e3;";
    let lexed = lex(src);
    let lits: Vec<_> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Literal)
        .map(|t| t.text.clone())
        .collect();
    assert_eq!(lits, vec!["0xFF_u8", "1_000_000", "2.5f64", "1.0e3"]);
}

#[test]
fn line_numbers_track_newlines_in_strings_and_comments() {
    let src = "let a = \"line\nbreak\";\n/* c\nc */\nfn g() {}";
    let lexed = lex(src);
    let g = lexed.tokens.iter().find(|t| t.is_ident("g")).unwrap();
    assert_eq!(g.line, 5);
}

#[test]
fn trailing_directive_applies_to_its_own_line() {
    let src = "fn f() {\n    x.unwrap(); // flowtune-lint: allow(panic, \"why\")\n}\n";
    let lexed = lex(src);
    assert_eq!(lexed.directives.len(), 1);
    let d = &lexed.directives[0];
    assert_eq!(d.rule, "panic");
    assert_eq!(d.reason.as_deref(), Some("why"));
    assert_eq!(d.line, 2);
    assert_eq!(d.applies_to, 2);
}

#[test]
fn standalone_directive_applies_to_next_code_line() {
    let src = "fn f() {\n    // flowtune-lint: allow(panic, \"why\")\n\n    x.unwrap();\n}\n";
    let lexed = lex(src);
    assert_eq!(lexed.directives.len(), 1);
    assert_eq!(lexed.directives[0].applies_to, 4);
}

#[test]
fn directive_without_reason_has_none() {
    let src = "// flowtune-lint: allow(panic)\nx.unwrap();";
    let lexed = lex(src);
    assert_eq!(lexed.directives.len(), 1);
    assert!(lexed.directives[0].reason.is_none());
}
