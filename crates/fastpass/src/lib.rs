//! A Fastpass-style centralized *per-packet* arbiter — the baseline the
//! paper's §6.1 throughput comparison is made against.
//!
//! Fastpass (Perry et al., SIGCOMM 2014) schedules every packet: for each
//! timeslot (the time one MTU occupies a link) the arbiter computes a
//! maximal matching between sources and destinations, so each endpoint
//! sends/receives at most one packet per slot. Its throughput is therefore
//! proportional to *packets* allocated per second of arbiter CPU, whereas
//! Flowtune does work only per flowlet event and per 10 µs iteration —
//! that asymmetry is the root of the paper's "10.4× more throughput per
//! core" claim, and this crate exists to measure it on the same hardware
//! as the Flowtune allocator benchmarks.
//!
//! The arbiter implements the greedy maximal-matching slot allocator with
//! a rotating scan origin for fairness (Fastpass's pipelined timeslot
//! allocation, single-threaded per slot).
//!
//! [`FastpassAdapter`] additionally exposes the arbiter through the
//! [`flowtune_alloc::RateAllocator`] interface, so the whole system — the
//! allocator service, the simulator, the experiment binaries — can run
//! with Fastpass-style arbitration as a drop-in engine
//! (`--engine fastpass`).

#![forbid(unsafe_code)]

pub mod adapter;

pub use adapter::FastpassAdapter;

use std::collections::HashMap;

/// A demand: `packets` MTUs waiting to go from `src` to `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Demand {
    /// Source endpoint.
    pub src: u16,
    /// Destination endpoint.
    pub dst: u16,
    /// Outstanding packets.
    pub packets: u64,
}

/// Per-timeslot maximal-matching arbiter.
#[derive(Debug)]
pub struct Arbiter {
    endpoints: usize,
    /// Active demands (packets > 0), scanned round-robin.
    demands: Vec<Demand>,
    /// (src, dst) → index into `demands`.
    index: HashMap<(u16, u16), usize>,
    /// Rotating scan origin: equal long-run service for equal demands.
    scan_start: usize,
    /// Scratch: src/dst busy flags for the current slot.
    src_busy: Vec<bool>,
    dst_busy: Vec<bool>,
    /// Total packets allocated over all slots.
    allocated: u64,
    /// Total timeslots processed.
    slots: u64,
}

impl Arbiter {
    /// Creates an arbiter for `endpoints` endpoints.
    pub fn new(endpoints: usize) -> Self {
        assert!(endpoints >= 2, "need at least two endpoints");
        Self {
            endpoints,
            demands: Vec::new(),
            index: HashMap::new(),
            scan_start: 0,
            src_busy: vec![false; endpoints],
            dst_busy: vec![false; endpoints],
            allocated: 0,
            slots: 0,
        }
    }

    /// Adds `packets` of demand from `src` to `dst`.
    ///
    /// # Panics
    /// Panics if endpoints are out of range or equal.
    pub fn add_demand(&mut self, src: u16, dst: u16, packets: u64) {
        assert!(src != dst, "src and dst must differ");
        assert!((src as usize) < self.endpoints && (dst as usize) < self.endpoints);
        if packets == 0 {
            return;
        }
        match self.index.get(&(src, dst)) {
            Some(&i) => self.demands[i].packets += packets,
            None => {
                self.index.insert((src, dst), self.demands.len());
                self.demands.push(Demand { src, dst, packets });
            }
        }
    }

    /// Outstanding packets across all demands.
    pub fn backlog(&self) -> u64 {
        self.demands.iter().map(|d| d.packets).sum()
    }

    /// Allocates one timeslot: a greedy maximal matching over the active
    /// demands. Returns the `(src, dst)` pairs that send in this slot.
    pub fn allocate_slot(&mut self) -> Vec<(u16, u16)> {
        self.slots += 1;
        let n = self.demands.len();
        if n == 0 {
            return Vec::new();
        }
        self.src_busy.iter_mut().for_each(|b| *b = false);
        self.dst_busy.iter_mut().for_each(|b| *b = false);
        let mut matched = Vec::new();
        // Greedy scan from a rotating origin: maximal because every
        // demand is inspected once and taken whenever both ends are free.
        for k in 0..n {
            let i = (self.scan_start + k) % n;
            let d = self.demands[i];
            if d.packets > 0 && !self.src_busy[d.src as usize] && !self.dst_busy[d.dst as usize] {
                self.src_busy[d.src as usize] = true;
                self.dst_busy[d.dst as usize] = true;
                self.demands[i].packets -= 1;
                matched.push((d.src, d.dst));
            }
        }
        self.scan_start = (self.scan_start + 1) % n.max(1);
        self.allocated += matched.len() as u64;
        self.compact();
        matched
    }

    /// Drops exhausted demands, keeping `index` consistent.
    fn compact(&mut self) {
        let mut i = 0;
        while i < self.demands.len() {
            if self.demands[i].packets == 0 {
                let dead = self.demands.swap_remove(i);
                self.index.remove(&(dead.src, dead.dst));
                if i < self.demands.len() {
                    let moved = self.demands[i];
                    self.index.insert((moved.src, moved.dst), i);
                }
                if self.scan_start > self.demands.len() {
                    self.scan_start = 0;
                }
            } else {
                i += 1;
            }
        }
    }

    /// Packets allocated so far.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Timeslots processed so far.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// Bits allocated so far, given the MTU used per slot.
    pub fn allocated_bits(&self, mtu_bytes: u64) -> u64 {
        self.allocated * mtu_bytes * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_is_valid_no_endpoint_reused() {
        let mut a = Arbiter::new(8);
        for s in 0..4u16 {
            for d in 4..8u16 {
                a.add_demand(s, d, 10);
            }
        }
        for _ in 0..20 {
            let m = a.allocate_slot();
            let mut srcs = std::collections::HashSet::new();
            let mut dsts = std::collections::HashSet::new();
            for (s, d) in m {
                assert!(srcs.insert(s), "src {s} matched twice");
                assert!(dsts.insert(d), "dst {d} matched twice");
            }
        }
    }

    #[test]
    fn matching_is_maximal() {
        // 0→2 and 1→3 are disjoint: both must be matched every slot.
        let mut a = Arbiter::new(4);
        a.add_demand(0, 2, 5);
        a.add_demand(1, 3, 5);
        for _ in 0..5 {
            assert_eq!(a.allocate_slot().len(), 2);
        }
        assert_eq!(a.backlog(), 0);
    }

    #[test]
    fn conflicting_demands_alternate_fairly() {
        // Two demands share destination 2: each slot serves exactly one,
        // and the rotating origin alternates them.
        let mut a = Arbiter::new(3);
        a.add_demand(0, 2, 100);
        a.add_demand(1, 2, 100);
        let mut served = HashMap::new();
        for _ in 0..100 {
            let m = a.allocate_slot();
            assert_eq!(m.len(), 1);
            *served.entry(m[0].0).or_insert(0u32) += 1;
        }
        let a_share = served[&0] as f64 / 100.0;
        assert!((0.4..=0.6).contains(&a_share), "unfair split: {served:?}");
    }

    #[test]
    fn demand_is_conserved() {
        let mut a = Arbiter::new(4);
        a.add_demand(0, 1, 7);
        a.add_demand(2, 3, 3);
        let mut total = 0;
        for _ in 0..20 {
            total += a.allocate_slot().len() as u64;
        }
        assert_eq!(total, 10);
        assert_eq!(a.allocated(), 10);
        assert_eq!(a.backlog(), 0);
        assert!(a.allocate_slot().is_empty(), "nothing left");
    }

    #[test]
    fn merging_demands_accumulates() {
        let mut a = Arbiter::new(4);
        a.add_demand(0, 1, 2);
        a.add_demand(0, 1, 3);
        assert_eq!(a.backlog(), 5);
        a.add_demand(0, 1, 0); // no-op
        assert_eq!(a.backlog(), 5);
    }

    #[test]
    fn allocated_bits_accounting() {
        let mut a = Arbiter::new(4);
        a.add_demand(0, 1, 4);
        while a.backlog() > 0 {
            a.allocate_slot();
        }
        assert_eq!(a.allocated_bits(1500), 4 * 1500 * 8);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn self_demand_rejected() {
        let mut a = Arbiter::new(4);
        a.add_demand(1, 1, 1);
    }
}
