//! [`FastpassAdapter`]: the per-packet arbiter behind the
//! [`RateAllocator`] interface.
//!
//! Fastpass and Flowtune answer the same question — "who may send, and
//! how fast?" — at different granularities: Fastpass allocates individual
//! MTU timeslots, Flowtune allocates explicit rates per flowlet. To
//! compare them under one control-plane API (and through the same
//! `AllocatorService`), this adapter runs the greedy maximal-matching
//! [`Arbiter`] and *derives rates* from its matchings:
//!
//! * every active flow keeps exactly one outstanding packet of demand per
//!   (src, dst) pair — each timeslot is a maximal matching over the
//!   active pairs, which is Fastpass's steady-state backlogged behaviour;
//! * a pair's throughput share is the exponentially-weighted fraction of
//!   recent timeslots in which it was matched; its rate is that share ×
//!   the access line rate (× the configured capacity headroom);
//! * flows sharing a pair split the pair's rate by weight.
//!
//! One [`RateAllocator::iterate`] call runs the number of timeslots that
//! fit in one 10 µs allocator tick at line rate (an MTU at 10 Gbit/s is
//! ~1.2 µs), so "iterations" advance wall-clock-comparable work for both
//! systems. The derived rates respect endpoint (access-link) capacity by
//! construction; like real Fastpass, the adapter does not price fabric
//! core links — on the paper's full-bisection Clos the endpoints are the
//! binding constraint.

use std::collections::BTreeMap;

use flowtune_alloc::{AllocConfig, FlowRate, RateAllocator};
use flowtune_topo::{FlowId, Path, TwoTierClos};

use crate::Arbiter;

/// EWMA weight for the per-pair matched-slot share.
const SHARE_ALPHA: f64 = 1.0 / 8.0;

#[derive(Debug, Clone, Copy)]
struct FpFlow {
    src: u16,
    dst: u16,
    weight: f64,
}

#[derive(Debug, Clone, Copy, Default)]
struct PairState {
    /// Flows registered on this (src, dst) pair.
    members: usize,
    /// Sum of their weights (for the intra-pair split).
    weight_sum: f64,
    /// Packets currently queued in the arbiter for this pair (0 or 1).
    outstanding: u64,
    /// EWMA of "matched this slot" ∈ {0, 1}.
    share: f64,
}

/// A Fastpass-style timeslot arbiter exposed as a [`RateAllocator`].
#[derive(Debug)]
pub struct FastpassAdapter {
    arbiter: Arbiter,
    /// Access line rate available for allocation, Gbit/s.
    line_rate_gbps: f64,
    /// Timeslots advanced per `iterate()` call.
    slots_per_iteration: usize,
    /// Flow table; `BTreeMap` keeps demand topping-up and `rates()`
    /// order deterministic (sorted by flow id).
    flows: BTreeMap<FlowId, FpFlow>,
    pairs: BTreeMap<(u16, u16), PairState>,
}

impl FastpassAdapter {
    /// Builds an adapter for `fabric`'s endpoints. `cfg.capacity_fraction`
    /// scales the allocatable line rate exactly as it scales the NED
    /// engines' link capacities; the NED-specific knobs (γ, F-NORM) are
    /// ignored.
    pub fn new(fabric: &TwoTierClos, cfg: AllocConfig) -> Self {
        let clos = fabric.config();
        let line_rate_gbps = clos.host_link_bps as f64 / 1e9 * cfg.capacity_fraction;
        // Slots per 10 µs tick at one MTU (1500 B) per slot.
        let slot_ps = 1500.0 * 8.0 / (clos.host_link_bps as f64) * 1e12;
        let slots_per_iteration = (10_000_000.0 / slot_ps).round().max(1.0) as usize;
        Self {
            arbiter: Arbiter::new(clos.server_count().max(2)),
            line_rate_gbps,
            slots_per_iteration,
            flows: BTreeMap::new(),
            pairs: BTreeMap::new(),
        }
    }

    /// Overrides the number of timeslots one `iterate()` advances.
    pub fn with_slots_per_iteration(mut self, slots: usize) -> Self {
        self.slots_per_iteration = slots.max(1);
        self
    }

    /// Sizes one `iterate()` to `iteration_ps` of fabric time (MTU slots
    /// at the access line rate). Services that run several engine
    /// iterations per tick use this so the arbiter still advances one
    /// tick's worth of timeslots per tick, not several.
    pub fn with_iteration_time_ps(mut self, iteration_ps: u64, host_link_bps: u64) -> Self {
        let slot_ps = 1500.0 * 8.0 / (host_link_bps as f64) * 1e12;
        self.slots_per_iteration = (iteration_ps as f64 / slot_ps).round().max(1.0) as usize;
        self
    }

    /// The wrapped arbiter (slot/packet counters for the §6.1 table).
    pub fn arbiter(&self) -> &Arbiter {
        &self.arbiter
    }

    /// Timeslots one `iterate()` advances.
    pub fn slots_per_iteration(&self) -> usize {
        self.slots_per_iteration
    }

    fn flow_rate_of(&self, f: &FpFlow) -> f64 {
        let pair = &self.pairs[&(f.src, f.dst)];
        self.line_rate_gbps * pair.share * f.weight / pair.weight_sum
    }
}

impl RateAllocator for FastpassAdapter {
    fn add_flow(
        &mut self,
        id: FlowId,
        src_server: usize,
        dst_server: usize,
        weight: f64,
        _path: &Path,
    ) {
        assert!(weight > 0.0 && weight.is_finite(), "weight must be > 0");
        assert!(src_server != dst_server, "src and dst must differ");
        let flow = FpFlow {
            src: src_server as u16,
            dst: dst_server as u16,
            weight,
        };
        assert!(
            self.flows.insert(id, flow).is_none(),
            "flow {id} already registered"
        );
        let pair = self.pairs.entry((flow.src, flow.dst)).or_default();
        pair.members += 1;
        pair.weight_sum += weight;
    }

    fn remove_flow(&mut self, id: FlowId) -> bool {
        let Some(flow) = self.flows.remove(&id) else {
            return false;
        };
        let key = (flow.src, flow.dst);
        let pair = self.pairs.get_mut(&key).expect("pair exists for flow");
        pair.members -= 1;
        pair.weight_sum -= flow.weight;
        if pair.members == 0 && pair.outstanding == 0 {
            self.pairs.remove(&key);
        }
        // A member-less pair with a packet still queued in the arbiter
        // stays as a zombie: it is never topped up again, `iterate`
        // drops it once the in-flight packet drains, and a flow re-added
        // on the same pair inherits the accurate outstanding count —
        // otherwise every end/restart cycle would leak one ghost packet
        // of demand.
        true
    }

    fn iterate(&mut self) {
        for _ in 0..self.slots_per_iteration {
            // Keep every active pair backlogged by exactly one packet
            // (zombie pairs only drain, they are not topped up).
            for (&(src, dst), pair) in self.pairs.iter_mut() {
                if pair.members > 0 && pair.outstanding == 0 {
                    self.arbiter.add_demand(src, dst, 1);
                    pair.outstanding = 1;
                }
            }
            let matched = self.arbiter.allocate_slot();
            // share ← (1−α)·share + α·hit, split so the slot costs
            // O(pairs + matched) instead of scanning `matched` per pair:
            // decay everyone, then credit the matched pairs α.
            for pair in self.pairs.values_mut() {
                pair.share *= 1.0 - SHARE_ALPHA;
            }
            for &(src, dst) in &matched {
                if let Some(pair) = self.pairs.get_mut(&(src, dst)) {
                    pair.outstanding = pair.outstanding.saturating_sub(1);
                    pair.share += SHARE_ALPHA;
                }
            }
            // Zombie pairs whose in-flight packet just drained are done.
            self.pairs.retain(|_, p| p.members > 0 || p.outstanding > 0);
        }
    }

    fn flow_count(&self) -> usize {
        self.flows.len()
    }

    fn rates(&self) -> Vec<FlowRate> {
        self.flows
            .iter()
            .map(|(&id, f)| {
                let gbps = self.flow_rate_of(f);
                FlowRate {
                    id,
                    rate: gbps,
                    normalized: gbps,
                }
            })
            .collect()
    }

    fn flow_rate(&self, id: FlowId) -> Option<FlowRate> {
        let f = self.flows.get(&id)?;
        let gbps = self.flow_rate_of(f);
        Some(FlowRate {
            id,
            rate: gbps,
            normalized: gbps,
        })
    }

    fn link_loads(&self) -> Vec<f64> {
        // Deliberately empty: the arbiter allocates endpoint-pair
        // timeslots and never prices fabric links, so it has no per-link
        // load vector to export. A sharded control plane treats an empty
        // export as "nothing to share" — inter-shard link-state exchange
        // degrades to a no-op over Fastpass shards, exactly like real
        // Fastpass arbiters, which coordinate through timeslot horizons
        // rather than link duals.
        Vec::new()
    }

    fn link_loads_into(&self, out: &mut Vec<f64>) {
        // Empty on purpose, like `link_loads`: clearing the buffer is the
        // whole export.
        out.clear();
    }

    fn set_background_loads(&mut self, loads: &[f64]) {
        // Deliberately a no-op (see `link_loads`): matchings are driven
        // by outstanding per-pair demand, and an exogenous per-link load
        // has no seat in a maximal matching over endpoint pairs.
        let _ = loads;
    }

    fn link_hessians_into(&self, out: &mut Vec<f64>) {
        // Empty on purpose (see `link_loads`).
        out.clear();
    }

    fn link_prices(&self) -> Vec<f64> {
        // No duals either (see `link_loads`): the arbiter has no price
        // state, so it abstains from inter-shard dual consensus.
        Vec::new()
    }

    fn link_prices_into(&self, out: &mut Vec<f64>) {
        // Empty on purpose (see `link_prices`).
        out.clear();
    }

    fn set_link_prices(&mut self, prices: &[f64]) {
        // Deliberately a no-op (see `link_prices`).
        let _ = prices;
    }

    fn name(&self) -> &'static str {
        "fastpass"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_topo::ClosConfig;

    fn fabric() -> TwoTierClos {
        TwoTierClos::build(ClosConfig::paper_eval())
    }

    fn add(a: &mut FastpassAdapter, f: &TwoTierClos, id: u64, src: usize, dst: usize, w: f64) {
        let path = f.path(src, dst, FlowId(id));
        a.add_flow(FlowId(id), src, dst, w, &path);
    }

    #[test]
    fn lone_flow_converges_to_line_rate() {
        let f = fabric();
        let mut a = FastpassAdapter::new(&f, AllocConfig::default());
        add(&mut a, &f, 1, 0, 140, 1.0);
        for _ in 0..50 {
            a.iterate();
        }
        let r = a.flow_rate(FlowId(1)).unwrap();
        // Uncontended pair: matched every slot → full access line rate.
        assert!((r.rate - 10.0).abs() < 0.2, "{r:?}");
        assert_eq!(r.rate.to_bits(), r.normalized.to_bits());
    }

    #[test]
    fn receiver_contention_halves_rates() {
        let f = fabric();
        let mut a = FastpassAdapter::new(&f, AllocConfig::default());
        add(&mut a, &f, 1, 0, 140, 1.0);
        add(&mut a, &f, 2, 1, 140, 1.0);
        for _ in 0..80 {
            a.iterate();
        }
        let r1 = a.flow_rate(FlowId(1)).unwrap().rate;
        let r2 = a.flow_rate(FlowId(2)).unwrap().rate;
        // One receiver, two senders: each pair is matched every other
        // slot.
        assert!((r1 - 5.0).abs() < 0.7, "r1 {r1}");
        assert!((r2 - 5.0).abs() < 0.7, "r2 {r2}");
        assert!(r1 + r2 < 10.0 + 0.5, "no over-allocation of the receiver");
    }

    #[test]
    fn weights_split_a_shared_pair() {
        let f = fabric();
        let mut a = FastpassAdapter::new(&f, AllocConfig::default());
        add(&mut a, &f, 1, 0, 140, 3.0);
        add(&mut a, &f, 2, 0, 140, 1.0);
        for _ in 0..50 {
            a.iterate();
        }
        let r1 = a.flow_rate(FlowId(1)).unwrap().rate;
        let r2 = a.flow_rate(FlowId(2)).unwrap().rate;
        assert!((r1 / r2 - 3.0).abs() < 1e-9, "{r1} / {r2}");
    }

    #[test]
    fn capacity_fraction_scales_the_line_rate() {
        let f = fabric();
        let cfg = AllocConfig {
            capacity_fraction: 0.99,
            ..AllocConfig::default()
        };
        let mut a = FastpassAdapter::new(&f, cfg);
        add(&mut a, &f, 1, 0, 140, 1.0);
        for _ in 0..80 {
            a.iterate();
        }
        let r = a.flow_rate(FlowId(1)).unwrap().rate;
        assert!(r <= 9.9 + 1e-9, "headroom respected: {r}");
        assert!(r > 9.5, "converged: {r}");
    }

    #[test]
    fn removal_frees_the_receiver() {
        let f = fabric();
        let mut a = FastpassAdapter::new(&f, AllocConfig::default());
        add(&mut a, &f, 1, 0, 140, 1.0);
        add(&mut a, &f, 2, 1, 140, 1.0);
        for _ in 0..50 {
            a.iterate();
        }
        assert!(a.remove_flow(FlowId(2)));
        assert!(!a.remove_flow(FlowId(2)), "double remove");
        for _ in 0..50 {
            a.iterate();
        }
        let r1 = a.flow_rate(FlowId(1)).unwrap().rate;
        assert!((r1 - 10.0).abs() < 0.2, "back to line rate: {r1}");
        assert_eq!(a.flow_count(), 1);
    }

    #[test]
    fn flowlet_churn_leaves_no_ghost_demand() {
        // Regression: a flowlet ending while its packet is still queued,
        // then restarting on the same pair, must not stack extra demand
        // in the arbiter (one ghost packet per end/restart cycle).
        let f = fabric();
        let mut a = FastpassAdapter::new(&f, AllocConfig::default());
        add(&mut a, &f, 100, 1, 140, 1.0); // persistent contender on dst 140
        for cycle in 0..20u64 {
            add(&mut a, &f, cycle, 0, 140, 1.0);
            a.iterate();
            assert!(a.remove_flow(FlowId(cycle)));
        }
        assert!(a.remove_flow(FlowId(100)));
        assert!(
            a.arbiter().backlog() <= 2,
            "ghost packets queued: {}",
            a.arbiter().backlog()
        );
        // Whatever is in flight drains, then the arbiter goes idle.
        a.iterate();
        assert_eq!(a.arbiter().backlog(), 0);
        assert_eq!(a.flow_count(), 0);
    }

    #[test]
    fn iteration_time_budget_sets_slot_count() {
        let f = fabric();
        let whole_tick = FastpassAdapter::new(&f, AllocConfig::default());
        // 10 µs of 1500 B slots at 10 G ≈ 8 slots per iteration.
        assert_eq!(whole_tick.slots_per_iteration(), 8);
        // A service running 2 iterations per tick gives each iteration
        // half the tick: half the slots, same fabric time per tick.
        let half_tick = FastpassAdapter::new(&f, AllocConfig::default())
            .with_iteration_time_ps(5_000_000, 10_000_000_000);
        assert_eq!(half_tick.slots_per_iteration(), 4);
        // Degenerate budgets still advance.
        let tiny = FastpassAdapter::new(&f, AllocConfig::default())
            .with_iteration_time_ps(1, 10_000_000_000);
        assert_eq!(tiny.slots_per_iteration(), 1);
    }

    #[test]
    fn rates_listed_in_flow_id_order() {
        let f = fabric();
        let mut a = FastpassAdapter::new(&f, AllocConfig::default());
        add(&mut a, &f, 9, 0, 140, 1.0);
        add(&mut a, &f, 3, 1, 141, 1.0);
        let ids: Vec<u64> = a.rates().iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![3, 9], "deterministic: sorted by flow id");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_flow_id_rejected() {
        let f = fabric();
        let mut a = FastpassAdapter::new(&f, AllocConfig::default());
        add(&mut a, &f, 1, 0, 140, 1.0);
        add(&mut a, &f, 1, 0, 140, 1.0);
    }
}
