//! Minimal, API-compatible subset of the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of `parking_lot` it actually uses: a
//! non-poisoning [`Mutex`] with `lock`/`into_inner`. Backed by
//! `std::sync::Mutex`; lock poisoning is ignored (parking_lot semantics).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Non-poisoning mutual exclusion, `parking_lot::Mutex`-shaped.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. A panicked
    /// holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn contended_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
