//! Minimal, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of `criterion` its benches use. There is
//! no statistical machinery: each benchmark runs a short warmup plus a
//! fixed number of timed iterations and prints the mean wall time (and
//! derived throughput when one was declared). Good enough to spot the
//! order-of-magnitude regressions the bench guards exist for; use real
//! criterion for publication-grade numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export target of `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared workload size, echoed as derived throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's name: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        Self {
            id: format!("{name}/{param}"),
        }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter(param: impl Display) -> Self {
        Self {
            id: param.to_string(),
        }
    }
}

/// The bench context handed to measurement closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, called `iters` times after one warmup call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = t0.elapsed();
    }

    /// Lets `f` time `iters` iterations itself and report the total.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

/// Group of related benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    samples: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count (criterion's sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: self.samples,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.samples,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    fn report(&self, id: &str, b: &Bencher) {
        let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => format!(" ({:.3e} elem/s)", n as f64 / per_iter),
            Some(Throughput::Bytes(n)) => format!(" ({:.3e} B/s)", n as f64 / per_iter),
            None => String::new(),
        };
        println!(
            "{}/{id}: {:.3} µs/iter over {} iters{rate}",
            self.name,
            per_iter * 1e6,
            b.iters
        );
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// The bench harness entry object.
#[derive(Debug, Default)]
pub struct Criterion {
    default_samples: u64,
}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let samples = if self.default_samples == 0 {
            20
        } else {
            self.default_samples
        };
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            samples,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(&name)
            .sample_size(20)
            .bench_function("", f);
        self
    }
}

/// Declares a bench group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, as in real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(5);
        group.throughput(Throughput::Elements(10));
        let mut count = 0u64;
        group.bench_with_input(BenchmarkId::new("noop", 10), &10u64, |b, &n| {
            b.iter(|| {
                count += n;
            })
        });
        group.finish();
        assert!(count >= 50, "bench closure must actually run");
    }

    #[test]
    fn iter_custom_records_reported_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("custom");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("x", 1), &(), |b, _| {
            b.iter_custom(Duration::from_micros)
        });
        group.finish();
    }
}
