//! Minimal, API-compatible subset of the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of `bytes` the codec and simulator use:
//! [`BytesMut`] (append + big-endian `put_*`), [`Bytes`] (consuming
//! big-endian `get_*`, `advance`, `slice`), and the [`Buf`]/[`BufMut`]
//! traits those methods live on. Semantics (network byte order, panics on
//! underflow) match the real crate; zero-copy refcounting is replaced by
//! plain owned buffers, which is plenty for tests and simulation.

#![forbid(unsafe_code)]

use std::ops::{Bound, Deref, RangeBounds};

/// A growable byte buffer, `bytes::BytesMut`-shaped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Removes all bytes.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Appends `src`.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            off: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        Self { data: src.to_vec() }
    }
}

/// An immutable byte buffer with a consumed-prefix cursor,
/// `bytes::Bytes`-shaped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    off: usize,
}

impl Bytes {
    /// Wraps a static slice.
    pub fn from_static(src: &'static [u8]) -> Self {
        Self {
            data: src.to_vec(),
            off: 0,
        }
    }

    /// Remaining (unconsumed) length.
    pub fn len(&self) -> usize {
        self.data.len() - self.off
    }

    /// Whether all bytes were consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a new `Bytes` holding the given sub-range of the remaining
    /// bytes.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of range");
        Bytes {
            data: self.as_slice()[start..end].to_vec(),
            off: 0,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.off..]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, off: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Self {
        Self {
            data: src.to_vec(),
            off: 0,
        }
    }
}

/// Read cursor over a byte source; all integer reads are big-endian, as in
/// the real `bytes` crate.
pub trait Buf {
    /// Remaining bytes.
    fn remaining(&self) -> usize;

    /// A view of the remaining bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let mut b = [0u8; 8];
        b.copy_from_slice(&c[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.off += cnt;
    }
}

/// Append sink for bytes; all integer writes are big-endian.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_roundtrip() {
        let mut b = BytesMut::new();
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEAD_BEEF);
        assert_eq!(b.len(), 7);
        assert_eq!(b[0], 0xAB);
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert!(r.is_empty());
    }

    #[test]
    fn slice_and_advance() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mut s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        s.advance(1);
        assert_eq!(&s[..], &[3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[4]);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from_static(&[1, 2]);
        b.advance(3);
    }
}
