//! Minimal, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of `rand` the workload generators use:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`]/[`RngExt`] traits with `random::<f64>()` and
//! `random_range(a..b)`. The generator is xoshiro256++ (seeded through
//! SplitMix64) — deterministic, high-quality, and stable across releases,
//! which is what the reproducible-trace tests rely on.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core entropy source: everything derives from `next_u64`.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Sampling conveniences over any [`Rng`] (rand 0.9's `random*` methods).
pub trait RngExt: Rng {
    /// Samples a value of `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the full
    /// range; `bool`: fair coin).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types samplable from their "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`RngExt::random_range`].
pub trait UniformInt: Sized {
    /// Uniform sample from `range`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                // Rejection sampling kills the modulo bias.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return range.start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8);

/// Seedable generators (rand's `SeedableRng`, `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step — used to expand seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    /// Alias kept for call sites that ask for the small generator.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval_and_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_covers_and_stays_inside() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.random_range(0usize..7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
