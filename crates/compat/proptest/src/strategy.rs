//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `sample`
/// draws a fresh value directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then a second strategy from it, then samples
    /// that.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Weighted union built by `prop_oneof!`.
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> OneOf<T> {
    /// Builds a union; weights must sum to a positive value.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs positive total weight");
        Self { arms, total }
    }
}

impl<T> std::fmt::Debug for OneOf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OneOf")
            .field("arms", &self.arms.len())
            .finish()
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights covered the whole interval")
    }
}

/// Strategy over a type's entire domain (behind `any::<T>()`).
#[derive(Debug, Clone, Copy, Default)]
pub struct FullRange<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! full_range_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

full_range_int!(u8, u16, u32, u64, usize);

impl Strategy for FullRange<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() - *self.start()) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                *self.start() + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

range_int!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
