//! Minimal, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of `proptest` its property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map` / `boxed`,
//! * range strategies (`0..n`, `0.0f64..1.0`, inclusive variants), tuple
//!   strategies up to arity 6, [`strategy::Just`],
//! * [`collection::vec`] and [`collection::btree_set`],
//! * [`sample::Index`] and [`arbitrary::any`],
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assume!`] macros.
//!
//! Differences from real proptest: cases are generated from a per-test
//! deterministic RNG (seeded from the test name, so failures reproduce
//! across runs), and there is **no shrinking** — a failing case panics
//! with the sampled values still bound, which the assert message shows.

#![forbid(unsafe_code)]

pub mod strategy;

pub mod test_runner {
    //! Test-runner configuration and control types.

    /// Returned by `prop_assume!` to skip a case.
    #[derive(Debug, Clone, Copy)]
    pub struct Rejected;

    /// Per-`proptest!` block configuration (`cases` only).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic per-test RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary label (e.g. the test name) so each
        /// test has a stable, independent stream.
        pub fn deterministic(label: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in label.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below(self.hi_inclusive - self.lo + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; the requested size must be
    /// reachable within the element domain (as in real proptest).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < 10_000 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            assert!(
                out.len() >= self.size.lo,
                "btree_set: element domain too small for requested size"
            );
            out
        }
    }
}

pub mod sample {
    //! Sampling helper types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An index into a collection whose length is only known at use time
    /// (`any::<Index>()` then `idx.index(len)`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        /// Maps the raw sample into `[0, len)`.
        ///
        /// # Panics
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index(0)");
            (self.raw % len as u64) as usize
        }
    }

    /// Strategy behind `any::<Index>()`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct IndexStrategy;

    impl Strategy for IndexStrategy {
        type Value = Index;

        fn sample(&self, rng: &mut TestRng) -> Index {
            Index {
                raw: rng.next_u64(),
            }
        }
    }
}

pub mod arbitrary {
    //! The `Arbitrary` trait and [`any`].

    use crate::strategy::{FullRange, Strategy};

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// That canonical strategy.
        type Strategy: Strategy<Value = Self>;

        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;
                fn arbitrary() -> FullRange<$t> {
                    FullRange::default()
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize);

    impl Arbitrary for crate::sample::Index {
        type Strategy = crate::sample::IndexStrategy;

        fn arbitrary() -> Self::Strategy {
            crate::sample::IndexStrategy
        }
    }

    impl Arbitrary for bool {
        type Strategy = FullRange<bool>;

        fn arbitrary() -> FullRange<bool> {
            FullRange::default()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Weighted or unweighted union of strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// runs `cases` sampled executions of its body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( #[test] fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = cfg.cases.saturating_mul(20).max(cfg.cases);
                while accepted < cfg.cases && attempts < max_attempts {
                    attempts += 1;
                    let outcome: ::std::result::Result<(), $crate::test_runner::Rejected> =
                        (|| {
                            $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if outcome.is_ok() {
                        accepted += 1;
                    }
                }
                assert!(
                    accepted >= cfg.cases.min(1),
                    "proptest: every generated case was rejected by prop_assume!"
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.5f64..2.0).sample(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let i = (1u32..=4).sample(&mut rng);
            assert!((1..=4).contains(&i));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut rng = crate::test_runner::TestRng::deterministic("oneof");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = crate::test_runner::TestRng::deterministic("coll");
        for _ in 0..100 {
            let v = crate::collection::vec(0usize..10, 2..5).sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            let s = crate::collection::btree_set(0usize..10, 1..=3).sample(&mut rng);
            assert!((1..=3).contains(&s.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_and_assumes((a, b) in (0u32..100, 0u32..100)) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
            prop_assert!(a < 100 && b < 100);
        }
    }
}
