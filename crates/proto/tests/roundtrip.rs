//! Property tests: every message round-trips through the codec, and
//! arbitrary byte splits of a message stream decode to the same sequence.

use bytes::BytesMut;
use flowtune_proto::codec::{decode_stream, encode, Message};
use flowtune_proto::{Rate16, Token};
use proptest::prelude::*;

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (
            0u32..=Token::MAX,
            any::<u16>(),
            any::<u16>(),
            any::<u32>(),
            any::<u16>(),
            any::<u8>()
        )
            .prop_map(|(t, src, dst, size_hint, weight_q8, spine)| {
                Message::FlowletStart {
                    token: Token::new(t),
                    src,
                    dst,
                    size_hint,
                    weight_q8,
                    spine,
                }
            }),
        (0u32..=Token::MAX).prop_map(|t| Message::FlowletEnd {
            token: Token::new(t)
        }),
        (0u32..=Token::MAX, 0.0f64..1e4).prop_map(|(t, r)| Message::RateUpdate {
            token: Token::new(t),
            rate: Rate16::encode(r),
        }),
    ]
}

proptest! {
    #[test]
    fn stream_roundtrip(messages in proptest::collection::vec(arb_message(), 0..32)) {
        let mut buf = BytesMut::new();
        for m in &messages {
            encode(m, &mut buf);
        }
        let mut bytes = buf.freeze();
        let decoded = decode_stream(&mut bytes).unwrap();
        prop_assert!(bytes.is_empty());
        prop_assert_eq!(decoded, messages);
    }

    #[test]
    fn split_stream_roundtrip(
        messages in proptest::collection::vec(arb_message(), 1..16),
        cut in any::<proptest::sample::Index>(),
    ) {
        let mut buf = BytesMut::new();
        for m in &messages {
            encode(m, &mut buf);
        }
        let all = buf.freeze();
        let cut = cut.index(all.len());
        // First chunk: decode what's complete.
        let mut head = all.slice(0..cut);
        let mut decoded = decode_stream(&mut head).unwrap();
        // Remainder of the stream = undecoded tail + rest.
        let mut rest = BytesMut::from(&head[..]);
        rest.extend_from_slice(&all[cut..]);
        let mut rest = rest.freeze();
        decoded.extend(decode_stream(&mut rest).unwrap());
        prop_assert!(rest.is_empty());
        prop_assert_eq!(decoded, messages);
    }

    #[test]
    fn rate16_monotone(a in 0.0f64..1e4, b in 0.0f64..1e4) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Rate16::encode(lo).decode() <= Rate16::encode(hi).decode());
    }

    #[test]
    fn rate16_relative_error_bounded(r in 1e-3f64..1e4) {
        let d = Rate16::encode(r).decode();
        prop_assert!(((d - r).abs() / r) < 2.5e-4, "{r} → {d}");
    }
}
