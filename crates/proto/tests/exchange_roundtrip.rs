//! Property tests for the exchange frame codec: arbitrary frames
//! round-trip bit-exact, and truncated buffers error without panicking.

use flowtune_proto::exchange::{
    decode_header, encode_header, encode_record, FrameError, FrameHeader, FrameKind, Record,
    RecordIter, FRAME_HEADER_BYTES,
};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = FrameKind> {
    prop_oneof![Just(FrameKind::State), Just(FrameKind::Epoch)]
}

fn arb_f64_bits() -> impl Strategy<Value = f64> {
    // Raw bit patterns: covers NaNs, infinities and subnormals — the
    // codec must round-trip every one of them bit-exact.
    any::<u64>().prop_map(f64::from_bits)
}

fn arb_record() -> impl Strategy<Value = Record> {
    prop_oneof![
        (any::<u32>(), arb_f64_bits(), arb_f64_bits(), arb_f64_bits()).prop_map(
            |(link, load, dual, hessian)| Record::LinkState {
                link,
                load,
                dual,
                hessian,
            }
        ),
        (any::<u32>(), arb_f64_bits(), arb_f64_bits(), arb_f64_bits()).prop_map(
            |(link, load, dual, hessian)| Record::CatchUp {
                link,
                load,
                dual,
                hessian,
            }
        ),
        any::<u32>().prop_map(|link| Record::SubAdd { link }),
        any::<u32>().prop_map(|link| Record::SubRemove { link }),
        any::<u64>().prop_map(|epoch| Record::EpochBegin { epoch }),
        (
            any::<u32>(),
            any::<u16>(),
            any::<u16>(),
            any::<u16>(),
            any::<u8>(),
            any::<u16>()
        )
            .prop_map(|(token, src, dst, weight_q8, spine, dst_shard)| {
                Record::Migration {
                    token,
                    src,
                    dst,
                    weight_q8,
                    spine,
                    dst_shard,
                }
            }),
    ]
}

fn arb_header() -> impl Strategy<Value = FrameHeader> {
    (
        arb_kind(),
        any::<u16>(),
        any::<u64>(),
        any::<u32>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(kind, shard, round, n_links, active, has_hessians)| FrameHeader {
                kind,
                shard,
                round,
                n_links,
                active,
                has_hessians,
            },
        )
}

/// Bit-exact record equality (`==` on f64 treats NaN != NaN and
/// -0.0 == 0.0, neither of which is what the wire must preserve).
fn same_bits(a: &Record, b: &Record) -> bool {
    fn state(r: &Record) -> Option<(bool, u32, u64, u64, u64)> {
        match *r {
            Record::LinkState {
                link,
                load,
                dual,
                hessian,
            } => Some((
                false,
                link,
                load.to_bits(),
                dual.to_bits(),
                hessian.to_bits(),
            )),
            Record::CatchUp {
                link,
                load,
                dual,
                hessian,
            } => Some((
                true,
                link,
                load.to_bits(),
                dual.to_bits(),
                hessian.to_bits(),
            )),
            _ => None,
        }
    }
    match (state(a), state(b)) {
        (Some(x), Some(y)) => x == y,
        (None, None) => a == b,
        _ => false,
    }
}

proptest! {
    #[test]
    fn frame_roundtrips_bit_exact(
        header in arb_header(),
        records in proptest::collection::vec(arb_record(), 0..24),
    ) {
        let mut buf = Vec::new();
        encode_header(&header, &mut buf);
        // Hessian words only travel when the header flags them; mirror
        // that in the expected record set.
        let expect: Vec<Record> = records
            .iter()
            .map(|r| match *r {
                Record::LinkState { link, load, dual, hessian } => Record::LinkState {
                    link,
                    load,
                    dual,
                    hessian: if header.has_hessians { hessian } else { 0.0 },
                },
                Record::CatchUp { link, load, dual, hessian } => Record::CatchUp {
                    link,
                    load,
                    dual,
                    hessian: if header.has_hessians { hessian } else { 0.0 },
                },
                other => other,
            })
            .collect();
        for r in &records {
            encode_record(r, header.has_hessians, &mut buf);
        }
        prop_assert_eq!(decode_header(&buf), Ok(header));
        let (h, iter) = RecordIter::new(&buf).unwrap();
        prop_assert_eq!(h, header);
        let mut n = 0usize;
        for (got, want) in iter.zip(&expect) {
            let got = got.unwrap();
            prop_assert!(same_bits(&got, want), "{:?} vs {:?}", got, want);
            n += 1;
        }
        prop_assert_eq!(n, expect.len());
    }

    #[test]
    fn truncated_frames_never_panic(
        header in arb_header(),
        records in proptest::collection::vec(arb_record(), 0..12),
        cut in any::<proptest::sample::Index>(),
    ) {
        let mut buf = Vec::new();
        encode_header(&header, &mut buf);
        for r in &records {
            encode_record(r, header.has_hessians, &mut buf);
        }
        let cut = cut.index(buf.len() + 1);
        let prefix = &buf[..cut];
        match RecordIter::new(prefix) {
            Err(FrameError::Truncated { offset }) => {
                prop_assert!(cut < FRAME_HEADER_BYTES);
                prop_assert!(offset <= cut);
            }
            Err(e) => prop_assert!(false, "unexpected header error: {}", e),
            Ok((h, iter)) => {
                prop_assert_eq!(h, header);
                for r in iter {
                    if let Err(e) = r {
                        prop_assert!(
                            matches!(e, FrameError::Truncated { .. }),
                            "unexpected record error: {}", e
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok((_, iter)) = RecordIter::new(&bytes) {
            for r in iter {
                let _ = r;
            }
        }
    }
}
