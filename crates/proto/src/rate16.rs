//! `Rate16`: the 2-byte rate encoding carried by rate updates.
//!
//! Layout: 5-bit exponent `e` (biased by 16), 11-bit mantissa `m`;
//! value = `(1 + m/2048) · 2^(e−16)` Gbit/s, with 0 encoded as all-zero.
//! Covers ~15 µbit/s … ~64 Tbit/s with ≤ 2⁻¹² ≈ 0.024% relative error —
//! two orders of magnitude below the 1% update threshold, so quantization
//! is never the accuracy bottleneck.

/// A rate quantized to 16 bits (unit: Gbit/s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rate16(u16);

const MANTISSA_BITS: u32 = 11;
const MANTISSA_DIV: f64 = (1u32 << MANTISSA_BITS) as f64;
const BIAS: i32 = 16;

impl Rate16 {
    /// Encodes a non-negative rate in Gbit/s, rounding to the nearest
    /// representable value and saturating at the format's limits.
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    pub fn encode(gbps: f64) -> Self {
        assert!(gbps >= 0.0 && gbps.is_finite(), "rate must be ≥ 0, finite");
        if gbps == 0.0 {
            return Rate16(0);
        }
        let e = gbps.log2().floor() as i32;
        let e_clamped = e.clamp(-BIAS, 31 - BIAS - 1);
        let frac = gbps / 2f64.powi(e_clamped) - 1.0;
        let m = (frac * MANTISSA_DIV).round();
        // Rounding can carry into the next exponent.
        let (e_final, m_final) = if m >= MANTISSA_DIV {
            (e_clamped + 1, 0.0)
        } else {
            (e_clamped, m)
        };
        if e_final + BIAS > 30 {
            // Saturate at max.
            return Rate16(((30u16) << MANTISSA_BITS) | ((1 << MANTISSA_BITS) - 1));
        }
        if e_final + BIAS < 0 {
            return Rate16(0);
        }
        Rate16((((e_final + BIAS) as u16) << MANTISSA_BITS) | m_final as u16)
    }

    /// Decodes back to Gbit/s.
    pub fn decode(self) -> f64 {
        if self.0 == 0 {
            return 0.0;
        }
        let e = (self.0 >> MANTISSA_BITS) as i32 - BIAS;
        let m = (self.0 & ((1 << MANTISSA_BITS) - 1)) as f64;
        (1.0 + m / MANTISSA_DIV) * 2f64.powi(e)
    }

    /// Raw wire representation.
    pub fn bits(self) -> u16 {
        self.0
    }

    /// From raw wire representation.
    pub fn from_bits(bits: u16) -> Self {
        Rate16(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_roundtrips() {
        assert_eq!(Rate16::encode(0.0).decode(), 0.0);
    }

    #[test]
    fn relative_error_is_small() {
        for &gbps in &[0.001, 0.01, 0.1, 1.0, 9.37, 10.0, 40.0, 100.0, 1234.5] {
            let got = Rate16::encode(gbps).decode();
            let rel = (got - gbps).abs() / gbps;
            assert!(rel < 2.5e-4, "{gbps} → {got} ({rel})");
        }
    }

    #[test]
    fn wire_bits_roundtrip() {
        let r = Rate16::encode(7.25);
        assert_eq!(Rate16::from_bits(r.bits()), r);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let max = Rate16::encode(1e12);
        assert!(max.decode() > 1e4, "saturated high: {}", max.decode());
        let tiny = Rate16::encode(1e-12);
        assert_eq!(tiny.decode(), 0.0, "underflow flushes to zero");
    }

    #[test]
    fn rounding_carry_into_next_exponent() {
        // A value a hair below a power of two must round up cleanly.
        let v = 2.0 - 1e-9;
        let got = Rate16::encode(v).decode();
        assert!((got - 2.0).abs() < 1e-9, "{got}");
    }

    #[test]
    fn monotone_on_samples() {
        let mut prev = -1.0;
        for i in 1..1000 {
            let v = i as f64 * 0.123;
            let d = Rate16::encode(v).decode();
            assert!(d >= prev, "non-monotone at {v}");
            prev = d;
        }
    }

    #[test]
    #[should_panic(expected = "must be ≥ 0")]
    fn negative_rejected() {
        let _ = Rate16::encode(-1.0);
    }
}
