//! Wire-overhead accounting (§7 "More scalable rate update schemes").
//!
//! "Sending tiny rate updates of a few bytes has huge overhead: Ethernet
//! has 64-byte minimum frames and preamble and interframe gaps, which cost
//! 84-bytes, even if only one byte is sent. When sending an 8-byte rate
//! update there is a 10× overhead." These helpers compute the actual
//! on-the-wire cost of control messages, standalone or batched into MTUs
//! through an intermediary.

/// TCP + IPv4 headers without options.
pub const TCP_IP_HEADER: usize = 40;
/// Ethernet header + FCS.
pub const ETH_HEADER: usize = 18;
/// Preamble + start-frame delimiter + minimum interframe gap.
pub const ETH_PREAMBLE_IFG: usize = 20;
/// Minimum Ethernet frame (header + payload + FCS).
pub const ETH_MIN_FRAME: usize = 64;
/// Standard MTU (IP payload).
pub const MTU: usize = 1500;

/// Bytes a single TCP segment carrying `payload` bytes occupies on the
/// wire, including Ethernet minimum-frame padding, preamble and IFG.
pub fn segment_wire_bytes(payload: usize) -> usize {
    let frame = (payload + TCP_IP_HEADER + ETH_HEADER).max(ETH_MIN_FRAME);
    frame + ETH_PREAMBLE_IFG
}

/// Bytes on the wire for `total_payload` bytes of control messages packed
/// greedily into MTU-sized segments (the §7 intermediary scheme: "The
/// allocator sends an MTU to each intermediary with all updates to the
/// intermediary's endpoints").
pub fn batched_wire_bytes(total_payload: usize) -> usize {
    if total_payload == 0 {
        return 0;
    }
    let per_segment = MTU - TCP_IP_HEADER;
    let full = total_payload / per_segment;
    let rem = total_payload % per_segment;
    full * segment_wire_bytes(per_segment) + if rem > 0 { segment_wire_bytes(rem) } else { 0 }
}

/// The §7 observation, as a computable quantity: wire bytes per message
/// when sent standalone vs batched.
pub fn standalone_overhead_factor(payload: usize) -> f64 {
    segment_wire_bytes(payload) as f64 / payload as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimum_frame_dominates_tiny_payloads() {
        // 6-byte rate update: 6 + 40 + 18 = 64 = exactly min frame.
        assert_eq!(segment_wire_bytes(6), 64 + 20);
        // 1-byte payload still costs a full minimum frame.
        assert_eq!(segment_wire_bytes(1), 84);
    }

    #[test]
    fn paper_ten_x_claim_for_8_byte_updates() {
        // "When sending an 8-byte rate update there is a 10× overhead":
        // 84 bytes on the wire for 8 useful bytes ≈ 10.5×.
        let f = standalone_overhead_factor(8);
        assert!((9.0..12.0).contains(&f), "{f}");
    }

    #[test]
    fn batching_amortizes_headers() {
        let n = 200; // 200 six-byte updates
        let standalone: usize = (0..n).map(|_| segment_wire_bytes(6)).sum();
        let batched = batched_wire_bytes(n * 6);
        assert!(batched * 5 < standalone, "{batched} vs {standalone}");
    }

    #[test]
    fn batched_zero_is_zero() {
        assert_eq!(batched_wire_bytes(0), 0);
    }

    #[test]
    fn batched_splits_at_mtu() {
        let per_segment = MTU - TCP_IP_HEADER;
        let one = batched_wire_bytes(per_segment);
        let two = batched_wire_bytes(per_segment + 1);
        assert!(two > one);
        assert_eq!(two, one + segment_wire_bytes(1));
    }
}
