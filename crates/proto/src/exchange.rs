//! Versioned wire format for the inter-shard link-state exchange.
//!
//! Each exchange round every shard emits exactly one **frame**: a fixed
//! 17-byte big-endian header followed by a run of tagged records. Frames
//! are written into a single flat caller-owned buffer (no per-record
//! allocation), and a transport ships them with a 4-byte length prefix.
//!
//! ```text
//!  0       1       2       3         5                13            17
//!  +-------+-------+-------+---------+----------------+-------------+
//!  | ver   | kind  | flags | shard   | round          | n_links     |
//!  | u8    | u8    | u8    | u16 BE  | u64 BE         | u32 BE      |
//!  +-------+-------+-------+---------+----------------+-------------+
//!  | tagged records ...                                             |
//!  +----------------------------------------------------------------+
//! ```
//!
//! * `ver` — protocol version, always [`EXCHANGE_VERSION`]. A receiver
//!   rejects any other value ([`FrameError::BadVersion`]) rather than
//!   guessing at the layout; peers of different versions never exchange.
//! * `kind` — [`FrameKind::State`] for the per-round link-state delta,
//!   [`FrameKind::Epoch`] for a placement-epoch / flow-migration batch.
//! * `flags` — bit 0 ([`FLAG_ACTIVE`]): the sender exported a non-empty
//!   load vector this round; bit 1 ([`FLAG_HESSIANS`]): the sender's
//!   link-state records carry a Hessian-diagonal word.
//! * `shard` — the sender's shard id.
//! * `round` — the sender's tick counter when the frame was built; used
//!   to match frames to rounds and detect late arrivals.
//! * `n_links` — length of the sender's exported link vectors (0 when
//!   inactive), so a receiver can size its replica before decoding.
//!
//! Records are tagged with a single byte; link-state and catch-up
//! records are 21 bytes (29 with the Hessian word), `f64` fields travel
//! as `to_bits` so every value — including NaN — round-trips bit-exact.
//!
//! The *logical* exchange accounting (`ServiceStats::exchange_bytes`)
//! intentionally keeps the in-process entry size (4 bytes of link id +
//! 8 per vector, no tag): it models the aggregated hub protocol the
//! paper costs out. The on-wire byte count — frame header, record tags
//! and the transport's length prefix — is reported separately by the
//! transports (see [`framed_wire_bytes`]).

/// The only protocol version this build speaks.
pub const EXCHANGE_VERSION: u8 = 1;

/// Fixed frame header size in bytes.
pub const FRAME_HEADER_BYTES: usize = 17;

/// Length prefix a stream transport prepends to every frame.
pub const LENGTH_PREFIX_BYTES: usize = 4;

/// Header flag: the sender exported a non-empty load vector this round.
pub const FLAG_ACTIVE: u8 = 0b0000_0001;

/// Header flag: link-state / catch-up records carry a Hessian word.
pub const FLAG_HESSIANS: u8 = 0b0000_0010;

const TAG_LINK_STATE: u8 = 1;
const TAG_CATCH_UP: u8 = 2;
const TAG_SUB_ADD: u8 = 3;
const TAG_SUB_REMOVE: u8 = 4;
const TAG_EPOCH_BEGIN: u8 = 5;
const TAG_MIGRATION: u8 = 6;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Per-round link-state delta (link-state, catch-up, subscription
    /// records).
    State,
    /// Placement-epoch announcement with flow-migration records.
    Epoch,
}

impl FrameKind {
    fn to_u8(self) -> u8 {
        match self {
            FrameKind::State => 1,
            FrameKind::Epoch => 2,
        }
    }

    fn from_u8(kind: u8) -> Result<Self, FrameError> {
        match kind {
            1 => Ok(FrameKind::State),
            2 => Ok(FrameKind::Epoch),
            _ => Err(FrameError::BadKind { kind }),
        }
    }
}

/// Decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// What the frame carries.
    pub kind: FrameKind,
    /// Sender's shard id.
    pub shard: u16,
    /// Sender's tick counter when the frame was built.
    pub round: u64,
    /// Length of the sender's exported link vectors (0 when inactive).
    pub n_links: u32,
    /// Sender exported a non-empty load vector this round.
    pub active: bool,
    /// Link-state / catch-up records carry a Hessian word.
    pub has_hessians: bool,
}

/// One record inside a frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Record {
    /// A link whose exported state moved past the delta threshold this
    /// round. `hessian` is 0.0 when the frame's [`FLAG_HESSIANS`] is
    /// clear (and does not travel).
    LinkState {
        /// Global link index.
        link: u32,
        /// Exported load on the link (Gbps).
        load: f64,
        /// Exported dual price on the link.
        dual: f64,
        /// Exported Hessian diagonal (∂x/∂p sum) on the link.
        hessian: f64,
    },
    /// A re-shipped, unchanged entry: sent after a placement epoch so a
    /// peer whose replica may predate the sender's state is re-seeded.
    /// Same layout as [`Record::LinkState`] but does not count as fresh
    /// movement.
    CatchUp {
        /// Global link index.
        link: u32,
        /// Current exported load on the link (Gbps).
        load: f64,
        /// Current exported dual price on the link.
        dual: f64,
        /// Current exported Hessian diagonal on the link.
        hessian: f64,
    },
    /// The sender now carries load on `link` (informational subscription
    /// announcement).
    SubAdd {
        /// Global link index.
        link: u32,
    },
    /// The sender no longer carries load on `link`.
    SubRemove {
        /// Global link index.
        link: u32,
    },
    /// A placement epoch begins; migration records follow.
    EpochBegin {
        /// Monotonic epoch counter.
        epoch: u64,
    },
    /// One flow handed off between shards during a placement epoch.
    Migration {
        /// Flowlet token.
        token: u32,
        /// Source server.
        src: u16,
        /// Destination server.
        dst: u16,
        /// Q8.8 fixed-point flow weight.
        weight_q8: u16,
        /// Pinned ECMP spine.
        spine: u8,
        /// Shard that adopts the flow.
        dst_shard: u16,
    },
}

/// Why a frame failed to decode. Offsets are byte positions from the
/// start of the frame, so a corrupt frame off a real socket is
/// diagnosable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ended mid-header or mid-record.
    Truncated {
        /// Byte offset at which more data was needed.
        offset: usize,
    },
    /// The version byte is not [`EXCHANGE_VERSION`].
    BadVersion {
        /// The version byte found.
        version: u8,
    },
    /// The kind byte is not a known [`FrameKind`].
    BadKind {
        /// The kind byte found.
        kind: u8,
    },
    /// An unknown record tag.
    BadTag {
        /// The tag byte found.
        tag: u8,
        /// Byte offset of the tag within the frame.
        offset: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FrameError::Truncated { offset } => {
                write!(f, "exchange frame truncated at byte {offset}")
            }
            FrameError::BadVersion { version } => {
                write!(
                    f,
                    "exchange frame version {version} (this build speaks {EXCHANGE_VERSION})"
                )
            }
            FrameError::BadKind { kind } => write!(f, "unknown exchange frame kind {kind}"),
            FrameError::BadTag { tag, offset } => {
                write!(f, "unknown exchange record tag {tag} at byte {offset}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn rd_u16(buf: &[u8], off: usize) -> Option<u16> {
    Some(u16::from_be_bytes(buf.get(off..off + 2)?.try_into().ok()?))
}

fn rd_u32(buf: &[u8], off: usize) -> Option<u32> {
    Some(u32::from_be_bytes(buf.get(off..off + 4)?.try_into().ok()?))
}

fn rd_u64(buf: &[u8], off: usize) -> Option<u64> {
    Some(u64::from_be_bytes(buf.get(off..off + 8)?.try_into().ok()?))
}

/// Append `header` to `buf` (exactly [`FRAME_HEADER_BYTES`] bytes).
pub fn encode_header(header: &FrameHeader, buf: &mut Vec<u8>) {
    buf.push(EXCHANGE_VERSION);
    buf.push(header.kind.to_u8());
    let mut flags = 0u8;
    if header.active {
        flags |= FLAG_ACTIVE;
    }
    if header.has_hessians {
        flags |= FLAG_HESSIANS;
    }
    buf.push(flags);
    put_u16(buf, header.shard);
    put_u64(buf, header.round);
    put_u32(buf, header.n_links);
}

/// Decode the header at the start of `frame` without touching the
/// records.
pub fn decode_header(frame: &[u8]) -> Result<FrameHeader, FrameError> {
    let truncated = FrameError::Truncated {
        offset: frame.len(),
    };
    if frame.len() < FRAME_HEADER_BYTES {
        return Err(truncated);
    }
    let version = *frame.first().ok_or(truncated)?;
    if version != EXCHANGE_VERSION {
        return Err(FrameError::BadVersion { version });
    }
    let kind = FrameKind::from_u8(*frame.get(1).ok_or(truncated)?)?;
    let flags = *frame.get(2).ok_or(truncated)?;
    Ok(FrameHeader {
        kind,
        shard: rd_u16(frame, 3).ok_or(truncated)?,
        round: rd_u64(frame, 5).ok_or(truncated)?,
        n_links: rd_u32(frame, 13).ok_or(truncated)?,
        active: flags & FLAG_ACTIVE != 0,
        has_hessians: flags & FLAG_HESSIANS != 0,
    })
}

/// Append one record to `buf`. `has_hessians` must match the frame
/// header's [`FLAG_HESSIANS`] — it decides whether link-state and
/// catch-up records carry the Hessian word.
pub fn encode_record(record: &Record, has_hessians: bool, buf: &mut Vec<u8>) {
    match *record {
        Record::LinkState {
            link,
            load,
            dual,
            hessian,
        } => {
            buf.push(TAG_LINK_STATE);
            put_u32(buf, link);
            put_u64(buf, load.to_bits());
            put_u64(buf, dual.to_bits());
            if has_hessians {
                put_u64(buf, hessian.to_bits());
            }
        }
        Record::CatchUp {
            link,
            load,
            dual,
            hessian,
        } => {
            buf.push(TAG_CATCH_UP);
            put_u32(buf, link);
            put_u64(buf, load.to_bits());
            put_u64(buf, dual.to_bits());
            if has_hessians {
                put_u64(buf, hessian.to_bits());
            }
        }
        Record::SubAdd { link } => {
            buf.push(TAG_SUB_ADD);
            put_u32(buf, link);
        }
        Record::SubRemove { link } => {
            buf.push(TAG_SUB_REMOVE);
            put_u32(buf, link);
        }
        Record::EpochBegin { epoch } => {
            buf.push(TAG_EPOCH_BEGIN);
            put_u64(buf, epoch);
        }
        Record::Migration {
            token,
            src,
            dst,
            weight_q8,
            spine,
            dst_shard,
        } => {
            buf.push(TAG_MIGRATION);
            put_u32(buf, token);
            put_u16(buf, src);
            put_u16(buf, dst);
            put_u16(buf, weight_q8);
            buf.push(spine);
            put_u16(buf, dst_shard);
        }
    }
}

/// Iterator over the records of one frame. Yields `Err` once on the
/// first malformed record and then fuses.
#[derive(Debug)]
pub struct RecordIter<'a> {
    frame: &'a [u8],
    offset: usize,
    has_hessians: bool,
    done: bool,
}

impl<'a> RecordIter<'a> {
    /// Decode the header of `frame` and return it with an iterator over
    /// the records that follow.
    pub fn new(frame: &'a [u8]) -> Result<(FrameHeader, RecordIter<'a>), FrameError> {
        let header = decode_header(frame)?;
        Ok((
            header,
            RecordIter {
                frame,
                offset: FRAME_HEADER_BYTES,
                has_hessians: header.has_hessians,
                done: false,
            },
        ))
    }

    /// Byte offset of the next undecoded record within the frame.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// The error every short read in this frame maps to.
    fn truncated(&self) -> FrameError {
        FrameError::Truncated {
            offset: self.frame.len(),
        }
    }

    fn state_record(&mut self, catch_up: bool) -> Result<Record, FrameError> {
        let off = self.offset + 1;
        let words = if self.has_hessians { 3 } else { 2 };
        let need = 1 + 4 + 8 * words;
        if self.frame.len() < self.offset + need {
            return Err(self.truncated());
        }
        let link = rd_u32(self.frame, off).ok_or(self.truncated())?;
        let load = f64::from_bits(rd_u64(self.frame, off + 4).ok_or(self.truncated())?);
        let dual = f64::from_bits(rd_u64(self.frame, off + 12).ok_or(self.truncated())?);
        let hessian = if self.has_hessians {
            f64::from_bits(rd_u64(self.frame, off + 20).ok_or(self.truncated())?)
        } else {
            0.0
        };
        self.offset += need;
        Ok(if catch_up {
            Record::CatchUp {
                link,
                load,
                dual,
                hessian,
            }
        } else {
            Record::LinkState {
                link,
                load,
                dual,
                hessian,
            }
        })
    }

    fn migration_record(&mut self) -> Result<Record, FrameError> {
        let off = self.offset + 1;
        if self.frame.len() < self.offset + 14 {
            return Err(self.truncated());
        }
        let record = Record::Migration {
            token: rd_u32(self.frame, off).ok_or(self.truncated())?,
            src: rd_u16(self.frame, off + 4).ok_or(self.truncated())?,
            dst: rd_u16(self.frame, off + 6).ok_or(self.truncated())?,
            weight_q8: rd_u16(self.frame, off + 8).ok_or(self.truncated())?,
            spine: *self.frame.get(off + 10).ok_or(self.truncated())?,
            dst_shard: rd_u16(self.frame, off + 11).ok_or(self.truncated())?,
        };
        self.offset += 14;
        Ok(record)
    }

    fn next_record(&mut self) -> Option<Result<Record, FrameError>> {
        let tag = *self.frame.get(self.offset)?;
        let result = match tag {
            TAG_LINK_STATE => self.state_record(false),
            TAG_CATCH_UP => self.state_record(true),
            TAG_SUB_ADD | TAG_SUB_REMOVE => match rd_u32(self.frame, self.offset + 1) {
                Some(link) => {
                    self.offset += 5;
                    if tag == TAG_SUB_ADD {
                        Ok(Record::SubAdd { link })
                    } else {
                        Ok(Record::SubRemove { link })
                    }
                }
                None => Err(FrameError::Truncated {
                    offset: self.frame.len(),
                }),
            },
            TAG_EPOCH_BEGIN => match rd_u64(self.frame, self.offset + 1) {
                Some(epoch) => {
                    self.offset += 9;
                    Ok(Record::EpochBegin { epoch })
                }
                None => Err(FrameError::Truncated {
                    offset: self.frame.len(),
                }),
            },
            TAG_MIGRATION => self.migration_record(),
            _ => Err(FrameError::BadTag {
                tag,
                offset: self.offset,
            }),
        };
        Some(result)
    }
}

impl Iterator for RecordIter<'_> {
    type Item = Result<Record, FrameError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let item = self.next_record();
        if matches!(item, Some(Err(_)) | None) {
            self.done = true;
        }
        item
    }
}

/// On-wire bytes for one frame shipped by a length-prefixed stream
/// transport: the 4-byte prefix plus the frame itself. (Ethernet-level
/// overheads are modeled separately by [`crate::wire`].)
pub fn framed_wire_bytes(frame_len: usize) -> u64 {
    (LENGTH_PREFIX_BYTES + frame_len) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(kind: FrameKind, has_hessians: bool) -> FrameHeader {
        FrameHeader {
            kind,
            shard: 3,
            round: 41,
            n_links: 48,
            active: true,
            has_hessians,
        }
    }

    #[test]
    fn header_roundtrips() {
        for has_h in [false, true] {
            for kind in [FrameKind::State, FrameKind::Epoch] {
                let h = header(kind, has_h);
                let mut buf = Vec::new();
                encode_header(&h, &mut buf);
                assert_eq!(buf.len(), FRAME_HEADER_BYTES);
                assert_eq!(decode_header(&buf).unwrap(), h);
            }
        }
    }

    #[test]
    fn records_roundtrip_with_and_without_hessians() {
        let records = [
            Record::LinkState {
                link: 7,
                load: 12.5,
                dual: -0.25,
                hessian: 3.75,
            },
            Record::CatchUp {
                link: 47,
                load: 0.0,
                dual: f64::NAN,
                hessian: 1e-300,
            },
            Record::SubAdd { link: 9 },
            Record::SubRemove { link: 10 },
            Record::EpochBegin { epoch: 5 },
            Record::Migration {
                token: 0xABCDEF,
                src: 1,
                dst: 15,
                weight_q8: 256,
                spine: 2,
                dst_shard: 1,
            },
        ];
        for has_h in [false, true] {
            let mut buf = Vec::new();
            encode_header(&header(FrameKind::State, has_h), &mut buf);
            for r in &records {
                encode_record(r, has_h, &mut buf);
            }
            let (h, iter) = RecordIter::new(&buf).unwrap();
            assert_eq!(h.has_hessians, has_h);
            let decoded: Vec<_> = iter.map(|r| r.unwrap()).collect();
            assert_eq!(decoded.len(), records.len());
            for (got, want) in decoded.iter().zip(&records) {
                match (got, want) {
                    (
                        Record::LinkState {
                            link: gl,
                            load: ga,
                            dual: gd,
                            hessian: gh,
                        },
                        Record::LinkState {
                            link: wl,
                            load: wa,
                            dual: wd,
                            hessian: wh,
                        },
                    )
                    | (
                        Record::CatchUp {
                            link: gl,
                            load: ga,
                            dual: gd,
                            hessian: gh,
                        },
                        Record::CatchUp {
                            link: wl,
                            load: wa,
                            dual: wd,
                            hessian: wh,
                        },
                    ) => {
                        assert_eq!(gl, wl);
                        assert_eq!(ga.to_bits(), wa.to_bits());
                        assert_eq!(gd.to_bits(), wd.to_bits());
                        let want_h = if has_h {
                            wh.to_bits()
                        } else {
                            0.0f64.to_bits()
                        };
                        assert_eq!(gh.to_bits(), want_h);
                    }
                    _ => assert_eq!(got, want),
                }
            }
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = Vec::new();
        encode_header(&header(FrameKind::State, false), &mut buf);
        buf[0] = 9;
        assert_eq!(
            decode_header(&buf),
            Err(FrameError::BadVersion { version: 9 })
        );
    }

    #[test]
    fn bad_tag_reports_its_offset() {
        let mut buf = Vec::new();
        encode_header(&header(FrameKind::State, false), &mut buf);
        encode_record(&Record::SubAdd { link: 1 }, false, &mut buf);
        let bad_at = buf.len();
        buf.push(0xEE);
        let (_, iter) = RecordIter::new(&buf).unwrap();
        let results: Vec<_> = iter.collect();
        assert_eq!(results[0], Ok(Record::SubAdd { link: 1 }));
        assert_eq!(
            results[1],
            Err(FrameError::BadTag {
                tag: 0xEE,
                offset: bad_at
            })
        );
        assert_eq!(results.len(), 2, "iterator must fuse after an error");
    }

    #[test]
    fn every_truncation_point_errors_without_panicking() {
        let mut buf = Vec::new();
        encode_header(&header(FrameKind::State, true), &mut buf);
        encode_record(
            &Record::LinkState {
                link: 3,
                load: 1.0,
                dual: 2.0,
                hessian: 3.0,
            },
            true,
            &mut buf,
        );
        encode_record(&Record::EpochBegin { epoch: 1 }, true, &mut buf);
        for cut in 0..buf.len() {
            let prefix = &buf[..cut];
            match RecordIter::new(prefix) {
                Err(FrameError::Truncated { offset }) => assert!(offset <= cut),
                Err(e) => panic!("unexpected error at cut {cut}: {e}"),
                Ok((_, iter)) => {
                    // Records may decode up to the cut; the tail must be
                    // a truncation error, never a panic.
                    for r in iter {
                        if let Err(e) = r {
                            assert!(matches!(e, FrameError::Truncated { .. }), "{e}");
                        }
                    }
                }
            }
        }
    }
}
