//! Rate-update suppression (§6.4).
//!
//! "The allocator notifies servers when the rates assigned to flows change
//! by a factor larger than a threshold. For example, with a threshold of
//! 0.01, a flow allocated 1 Gbit/s will only be notified when its rate
//! changes above 1.01 or below 0.99 Gbits/s." The matching capacity
//! headroom lives in `flowtune_alloc::AllocConfig::capacity_fraction`.

use std::collections::HashMap;

use crate::Token;

/// Per-flowlet last-sent-rate tracker implementing the update threshold.
#[derive(Debug, Clone)]
pub struct ThresholdFilter {
    threshold: f64,
    last_sent: HashMap<Token, f64>,
    suppressed: u64,
    sent: u64,
}

impl ThresholdFilter {
    /// Creates a filter; `threshold` is the relative change (e.g. 0.01)
    /// below which updates are suppressed. A threshold of 0 forwards
    /// everything.
    ///
    /// # Panics
    /// Panics if `threshold` is negative or not finite.
    pub fn new(threshold: f64) -> Self {
        assert!(
            threshold >= 0.0 && threshold.is_finite(),
            "threshold must be ≥ 0"
        );
        Self {
            threshold,
            last_sent: HashMap::new(),
            suppressed: 0,
            sent: 0,
        }
    }

    /// Decides whether `rate` for `token` must be sent. The first rate for
    /// a token is always sent; afterwards only changes beyond the
    /// threshold (relative to the *last sent* rate, not the last computed
    /// one) pass. Records the rate as sent when it passes.
    pub fn should_send(&mut self, token: Token, rate: f64) -> bool {
        match self.last_sent.get(&token) {
            Some(&prev) => {
                let send = if prev == 0.0 {
                    rate != 0.0
                } else {
                    (rate - prev).abs() / prev > self.threshold
                };
                if send {
                    self.last_sent.insert(token, rate);
                    self.sent += 1;
                } else {
                    self.suppressed += 1;
                }
                send
            }
            None => {
                self.last_sent.insert(token, rate);
                self.sent += 1;
                true
            }
        }
    }

    /// Forgets a flowlet (on `FlowletEnd`), so a token reuse starts fresh.
    pub fn forget(&mut self, token: Token) {
        self.last_sent.remove(&token);
    }

    /// Number of updates that passed the filter.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Number of updates suppressed by the filter.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Currently tracked flowlets.
    pub fn tracked(&self) -> usize {
        self.last_sent.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: u32) -> Token {
        Token::new(v)
    }

    #[test]
    fn first_update_always_sent() {
        let mut f = ThresholdFilter::new(0.01);
        assert!(f.should_send(t(1), 5.0));
        assert_eq!(f.sent(), 1);
    }

    #[test]
    fn small_changes_suppressed_relative_to_last_sent() {
        let mut f = ThresholdFilter::new(0.01);
        assert!(f.should_send(t(1), 1.0));
        assert!(!f.should_send(t(1), 1.005)); // +0.5%
        assert!(!f.should_send(t(1), 0.995)); // −0.5%
                                              // Drift accumulates relative to the last *sent* value (1.0):
        assert!(f.should_send(t(1), 1.011)); // +1.1% vs 1.0 → send
        assert_eq!(f.suppressed(), 2);
        assert_eq!(f.sent(), 2);
    }

    #[test]
    fn exact_threshold_is_suppressed() {
        // The paper's wording: notified when the change is *larger* than
        // the threshold — an exactly-at-threshold change stays quiet.
        // (0.5, 2.0 and 3.0 are exactly representable, so the comparison
        // is float-exact.)
        let mut f = ThresholdFilter::new(0.5);
        assert!(f.should_send(t(1), 2.0));
        assert!(!f.should_send(t(1), 3.0));
        assert!(f.should_send(t(1), 3.5));
    }

    #[test]
    fn zero_threshold_forwards_changes_only() {
        let mut f = ThresholdFilter::new(0.0);
        assert!(f.should_send(t(1), 1.0));
        assert!(!f.should_send(t(1), 1.0), "identical rate never resent");
        assert!(f.should_send(t(1), 1.0000001));
    }

    #[test]
    fn zero_rate_transitions() {
        let mut f = ThresholdFilter::new(0.05);
        assert!(f.should_send(t(1), 0.0));
        assert!(!f.should_send(t(1), 0.0));
        assert!(f.should_send(t(1), 0.5), "leaving zero is always a change");
    }

    #[test]
    fn forget_resets_tracking() {
        let mut f = ThresholdFilter::new(0.01);
        assert!(f.should_send(t(1), 1.0));
        f.forget(t(1));
        assert_eq!(f.tracked(), 0);
        assert!(f.should_send(t(1), 1.0), "fresh after forget");
    }

    #[test]
    fn independent_tokens() {
        let mut f = ThresholdFilter::new(0.01);
        assert!(f.should_send(t(1), 1.0));
        assert!(f.should_send(t(2), 1.0));
        assert!(!f.should_send(t(1), 1.0));
    }

    #[test]
    #[should_panic(expected = "≥ 0")]
    fn negative_threshold_rejected() {
        let _ = ThresholdFilter::new(-0.1);
    }
}
