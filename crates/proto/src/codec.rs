//! Message definitions and the byte codec.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::rate16::Rate16;
use crate::Token;

/// A control-plane message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Message {
    /// Endpoint → allocator: a flowlet became backlogged. 16 bytes.
    FlowletStart {
        /// Flowlet handle chosen by the endpoint.
        token: Token,
        /// Source server index.
        src: u16,
        /// Destination server index.
        dst: u16,
        /// Size hint in bytes (0 = unknown/open-ended), saturating.
        size_hint: u32,
        /// Proportional-fairness weight in 1/256 units (256 = weight 1.0).
        weight_q8: u16,
        /// ECMP spine the flow hashes to, so the allocator can reconstruct
        /// the path (§7 path discovery).
        spine: u8,
    },
    /// Endpoint → allocator: the flowlet's queue drained. 4 bytes.
    FlowletEnd {
        /// Handle from the matching start.
        token: Token,
    },
    /// Allocator → endpoint: new paced rate for a flowlet. 6 bytes.
    RateUpdate {
        /// Handle from the matching start.
        token: Token,
        /// The allocated, normalized rate.
        rate: Rate16,
    },
}

const TAG_START: u8 = 1;
const TAG_END: u8 = 2;
const TAG_RATE: u8 = 3;

/// Paper-specified encoded sizes (§6.2), tag byte included.
pub const START_BYTES: usize = 16;
/// Size of a `FlowletEnd` message.
pub const END_BYTES: usize = 4;
/// Size of a `RateUpdate` message.
pub const RATE_BYTES: usize = 6;

impl Message {
    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            Message::FlowletStart { .. } => START_BYTES,
            Message::FlowletEnd { .. } => END_BYTES,
            Message::RateUpdate { .. } => RATE_BYTES,
        }
    }
}

fn put_u24(buf: &mut BytesMut, v: u32) {
    debug_assert!(v <= Token::MAX);
    buf.put_u8((v >> 16) as u8);
    buf.put_u16(v as u16);
}

fn get_u24(buf: &mut Bytes) -> u32 {
    let hi = buf.get_u8() as u32;
    let lo = buf.get_u16() as u32;
    (hi << 16) | lo
}

/// Appends `msg` to `buf`.
pub fn encode(msg: &Message, buf: &mut BytesMut) {
    match *msg {
        Message::FlowletStart {
            token,
            src,
            dst,
            size_hint,
            weight_q8,
            spine,
        } => {
            buf.put_u8(TAG_START);
            put_u24(buf, token.get());
            buf.put_u16(src);
            buf.put_u16(dst);
            buf.put_u32(size_hint);
            buf.put_u16(weight_q8);
            buf.put_u8(spine);
            buf.put_u8(0); // padding to 16 bytes
        }
        Message::FlowletEnd { token } => {
            buf.put_u8(TAG_END);
            put_u24(buf, token.get());
        }
        Message::RateUpdate { token, rate } => {
            buf.put_u8(TAG_RATE);
            put_u24(buf, token.get());
            buf.put_u16(rate.bits());
        }
    }
}

/// Decode error, carrying the byte offset of the failure so a corrupt
/// stream from a real socket is diagnosable. For [`decode`] the offset
/// is relative to the front of the buffer (always 0 for a bad tag); for
/// [`MessageIter`] it is the absolute offset within the iterated slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer holds a partial message (need more bytes).
    Truncated {
        /// Byte offset at which the incomplete message starts.
        offset: usize,
    },
    /// Unknown tag byte.
    BadTag {
        /// The tag byte found.
        tag: u8,
        /// Byte offset of the bad tag.
        offset: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            DecodeError::Truncated { offset } => {
                write!(f, "truncated message at byte {offset}")
            }
            DecodeError::BadTag { tag, offset } => {
                write!(f, "unknown message tag {tag} at byte {offset}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decodes one message from the front of `buf`, consuming its bytes.
pub fn decode(buf: &mut Bytes) -> Result<Message, DecodeError> {
    if buf.is_empty() {
        return Err(DecodeError::Truncated { offset: 0 });
    }
    // flowtune-lint: allow(panic, "bounded: is_empty checked on the line above")
    let tag = buf[0];
    let need = match tag {
        TAG_START => START_BYTES,
        TAG_END => END_BYTES,
        TAG_RATE => RATE_BYTES,
        other => {
            return Err(DecodeError::BadTag {
                tag: other,
                offset: 0,
            })
        }
    };
    if buf.len() < need {
        return Err(DecodeError::Truncated { offset: 0 });
    }
    buf.advance(1);
    Ok(match tag {
        TAG_START => {
            let token = Token::new(get_u24(buf));
            let src = buf.get_u16();
            let dst = buf.get_u16();
            let size_hint = buf.get_u32();
            let weight_q8 = buf.get_u16();
            let spine = buf.get_u8();
            let _pad = buf.get_u8();
            Message::FlowletStart {
                token,
                src,
                dst,
                size_hint,
                weight_q8,
                spine,
            }
        }
        TAG_END => Message::FlowletEnd {
            token: Token::new(get_u24(buf)),
        },
        _ => Message::RateUpdate {
            token: Token::new(get_u24(buf)),
            rate: Rate16::from_bits(buf.get_u16()),
        },
    })
}

/// Allocation-free iterator over the complete messages at the front of a
/// byte slice. A stream segment may end mid-message; the iterator stops
/// there (a partial tail is not an error) and [`MessageIter::consumed`]
/// reports how many bytes were decoded so the caller can retain the
/// remainder for the next segment. A bad tag yields one `Err` (with its
/// absolute byte offset) and then the iterator fuses.
///
/// This is the hot-path variant of [`decode_stream`]: it never allocates,
/// so a simulator draining thousands of control segments per tick does
/// not pay a `Vec<Message>` per call.
#[derive(Debug)]
pub struct MessageIter<'a> {
    buf: &'a [u8],
    offset: usize,
    done: bool,
}

impl<'a> MessageIter<'a> {
    /// Iterate the messages at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        MessageIter {
            buf,
            offset: 0,
            done: false,
        }
    }

    /// Bytes decoded so far (the partial tail, if any, starts here).
    pub fn consumed(&self) -> usize {
        self.offset
    }
}

// The *_at helpers index without `.get()` on purpose: they are the
// zero-copy fast path, and their only caller (`MessageIter::next`)
// verifies `need` bytes are present before touching any of them.
fn u16_at(buf: &[u8], off: usize) -> u16 {
    // flowtune-lint: allow(panic, "bounded: caller checked `need` bytes remain")
    u16::from_be_bytes([buf[off], buf[off + 1]])
}

fn u24_at(buf: &[u8], off: usize) -> u32 {
    // flowtune-lint: allow(panic, "bounded: caller checked `need` bytes remain")
    ((buf[off] as u32) << 16) | (u16_at(buf, off + 1) as u32)
}

fn u32_at(buf: &[u8], off: usize) -> u32 {
    // flowtune-lint: allow(panic, "bounded: caller checked `need` bytes remain")
    u32::from_be_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

impl Iterator for MessageIter<'_> {
    type Item = Result<Message, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done || self.offset >= self.buf.len() {
            return None;
        }
        // flowtune-lint: allow(panic, "bounded: offset < len checked on entry")
        let tag = self.buf[self.offset];
        let need = match tag {
            TAG_START => START_BYTES,
            TAG_END => END_BYTES,
            TAG_RATE => RATE_BYTES,
            other => {
                self.done = true;
                return Some(Err(DecodeError::BadTag {
                    tag: other,
                    offset: self.offset,
                }));
            }
        };
        if self.buf.len() < self.offset + need {
            // Partial tail: stop without consuming it.
            self.done = true;
            return None;
        }
        let at = self.offset + 1;
        let msg = match tag {
            TAG_START => Message::FlowletStart {
                token: Token::new(u24_at(self.buf, at)),
                src: u16_at(self.buf, at + 3),
                dst: u16_at(self.buf, at + 5),
                size_hint: u32_at(self.buf, at + 7),
                weight_q8: u16_at(self.buf, at + 11),
                // flowtune-lint: allow(panic, "bounded: START_BYTES checked above; at+13 is the last header byte")
                spine: self.buf[at + 13],
            },
            TAG_END => Message::FlowletEnd {
                token: Token::new(u24_at(self.buf, at)),
            },
            _ => Message::RateUpdate {
                token: Token::new(u24_at(self.buf, at)),
                rate: Rate16::from_bits(u16_at(self.buf, at + 3)),
            },
        };
        self.offset += need;
        Some(Ok(msg))
    }
}

/// Decodes every complete message in `buf` (a TCP stream segment may end
/// mid-message; the remainder stays in `buf` for the next call). On a bad
/// tag, the messages before it are consumed and the error's offset points
/// at the offending byte. Allocates the returned `Vec`; hot paths should
/// iterate [`MessageIter`] directly.
pub fn decode_stream(buf: &mut Bytes) -> Result<Vec<Message>, DecodeError> {
    // flowtune-lint: allow(panic, "full-range slice of Bytes cannot be out of bounds")
    let mut iter = MessageIter::new(&buf[..]);
    let mut out = Vec::new();
    let result = loop {
        match iter.next() {
            Some(Ok(m)) => out.push(m),
            Some(Err(e)) => break Err(e),
            None => break Ok(()),
        }
    };
    buf.advance(iter.consumed());
    result.map(|()| out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start() -> Message {
        Message::FlowletStart {
            token: Token::new(0x00AB_CDEF),
            src: 17,
            dst: 143,
            size_hint: 1_000_000,
            weight_q8: 256,
            spine: 3,
        }
    }

    #[test]
    fn sizes_match_the_paper() {
        let mut buf = BytesMut::new();
        encode(&start(), &mut buf);
        assert_eq!(buf.len(), 16);
        buf.clear();
        encode(
            &Message::FlowletEnd {
                token: Token::new(1),
            },
            &mut buf,
        );
        assert_eq!(buf.len(), 4);
        buf.clear();
        encode(
            &Message::RateUpdate {
                token: Token::new(1),
                rate: Rate16::encode(10.0),
            },
            &mut buf,
        );
        assert_eq!(buf.len(), 6);
    }

    #[test]
    fn roundtrip_each_kind() {
        for msg in [
            start(),
            Message::FlowletEnd {
                token: Token::new(Token::MAX),
            },
            Message::RateUpdate {
                token: Token::new(0),
                rate: Rate16::encode(3.5),
            },
        ] {
            let mut buf = BytesMut::new();
            encode(&msg, &mut buf);
            let mut bytes = buf.freeze();
            assert_eq!(decode(&mut bytes).unwrap(), msg);
            assert!(bytes.is_empty(), "no leftover bytes");
        }
    }

    #[test]
    fn stream_decoding_handles_partials() {
        let mut buf = BytesMut::new();
        encode(&start(), &mut buf);
        encode(
            &Message::FlowletEnd {
                token: Token::new(7),
            },
            &mut buf,
        );
        encode(
            &Message::RateUpdate {
                token: Token::new(9),
                rate: Rate16::encode(1.0),
            },
            &mut buf,
        );
        let all = buf.freeze();
        // Split mid-second-message.
        let mut first = all.slice(0..18);
        let msgs = decode_stream(&mut first).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(first.len(), 2, "partial tail retained");
        // Feed the rest.
        let mut rest = BytesMut::from(&first[..]);
        rest.extend_from_slice(&all[18..]);
        let mut rest = rest.freeze();
        let msgs2 = decode_stream(&mut rest).unwrap();
        assert_eq!(msgs2.len(), 2);
        assert!(rest.is_empty());
    }

    #[test]
    fn bad_tag_is_an_error() {
        let mut bytes = Bytes::from_static(&[0xFF, 0, 0, 0]);
        assert_eq!(
            decode(&mut bytes),
            Err(DecodeError::BadTag {
                tag: 0xFF,
                offset: 0
            })
        );
    }

    #[test]
    fn truncated_is_reported_without_consuming() {
        let mut buf = BytesMut::new();
        encode(&start(), &mut buf);
        let mut partial = buf.freeze().slice(0..10);
        assert_eq!(
            decode(&mut partial),
            Err(DecodeError::Truncated { offset: 0 })
        );
        assert_eq!(partial.len(), 10, "nothing consumed");
    }

    #[test]
    fn message_iter_matches_decode_stream() {
        let mut buf = BytesMut::new();
        encode(&start(), &mut buf);
        encode(
            &Message::FlowletEnd {
                token: Token::new(7),
            },
            &mut buf,
        );
        encode(
            &Message::RateUpdate {
                token: Token::new(9),
                rate: Rate16::encode(1.0),
            },
            &mut buf,
        );
        // Cut mid-third-message: the iterator decodes the first two and
        // leaves the tail unconsumed, exactly like decode_stream.
        let cut = START_BYTES + END_BYTES + 2;
        let mut iter = MessageIter::new(&buf[..cut]);
        let msgs: Vec<_> = iter.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(msgs.len(), 2);
        assert_eq!(iter.consumed(), START_BYTES + END_BYTES);
        let mut bytes = buf.clone().freeze().slice(0..cut);
        assert_eq!(decode_stream(&mut bytes).unwrap(), msgs);
        assert_eq!(bytes.len(), 2);
    }

    #[test]
    fn message_iter_reports_bad_tag_offset_and_fuses() {
        let mut buf = BytesMut::new();
        encode(
            &Message::FlowletEnd {
                token: Token::new(3),
            },
            &mut buf,
        );
        buf.put_u8(0xEE);
        let results: Vec<_> = MessageIter::new(&buf[..]).collect();
        assert_eq!(results.len(), 2);
        assert!(results[0].is_ok());
        assert_eq!(
            results[1],
            Err(DecodeError::BadTag {
                tag: 0xEE,
                offset: END_BYTES
            })
        );
        // decode_stream consumes the good prefix and surfaces the error.
        let mut bytes = buf.freeze();
        assert_eq!(
            decode_stream(&mut bytes),
            Err(DecodeError::BadTag {
                tag: 0xEE,
                offset: END_BYTES
            })
        );
        assert_eq!(bytes.len(), 1, "good prefix consumed, bad byte retained");
    }
}
