//! Message definitions and the byte codec.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::rate16::Rate16;
use crate::Token;

/// A control-plane message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Message {
    /// Endpoint → allocator: a flowlet became backlogged. 16 bytes.
    FlowletStart {
        /// Flowlet handle chosen by the endpoint.
        token: Token,
        /// Source server index.
        src: u16,
        /// Destination server index.
        dst: u16,
        /// Size hint in bytes (0 = unknown/open-ended), saturating.
        size_hint: u32,
        /// Proportional-fairness weight in 1/256 units (256 = weight 1.0).
        weight_q8: u16,
        /// ECMP spine the flow hashes to, so the allocator can reconstruct
        /// the path (§7 path discovery).
        spine: u8,
    },
    /// Endpoint → allocator: the flowlet's queue drained. 4 bytes.
    FlowletEnd {
        /// Handle from the matching start.
        token: Token,
    },
    /// Allocator → endpoint: new paced rate for a flowlet. 6 bytes.
    RateUpdate {
        /// Handle from the matching start.
        token: Token,
        /// The allocated, normalized rate.
        rate: Rate16,
    },
}

const TAG_START: u8 = 1;
const TAG_END: u8 = 2;
const TAG_RATE: u8 = 3;

/// Paper-specified encoded sizes (§6.2), tag byte included.
pub const START_BYTES: usize = 16;
/// Size of a `FlowletEnd` message.
pub const END_BYTES: usize = 4;
/// Size of a `RateUpdate` message.
pub const RATE_BYTES: usize = 6;

impl Message {
    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            Message::FlowletStart { .. } => START_BYTES,
            Message::FlowletEnd { .. } => END_BYTES,
            Message::RateUpdate { .. } => RATE_BYTES,
        }
    }
}

fn put_u24(buf: &mut BytesMut, v: u32) {
    debug_assert!(v <= Token::MAX);
    buf.put_u8((v >> 16) as u8);
    buf.put_u16(v as u16);
}

fn get_u24(buf: &mut Bytes) -> u32 {
    let hi = buf.get_u8() as u32;
    let lo = buf.get_u16() as u32;
    (hi << 16) | lo
}

/// Appends `msg` to `buf`.
pub fn encode(msg: &Message, buf: &mut BytesMut) {
    match *msg {
        Message::FlowletStart {
            token,
            src,
            dst,
            size_hint,
            weight_q8,
            spine,
        } => {
            buf.put_u8(TAG_START);
            put_u24(buf, token.get());
            buf.put_u16(src);
            buf.put_u16(dst);
            buf.put_u32(size_hint);
            buf.put_u16(weight_q8);
            buf.put_u8(spine);
            buf.put_u8(0); // padding to 16 bytes
        }
        Message::FlowletEnd { token } => {
            buf.put_u8(TAG_END);
            put_u24(buf, token.get());
        }
        Message::RateUpdate { token, rate } => {
            buf.put_u8(TAG_RATE);
            put_u24(buf, token.get());
            buf.put_u16(rate.bits());
        }
    }
}

/// Decode error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer holds a partial message (need more bytes).
    Truncated,
    /// Unknown tag byte.
    BadTag(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated message"),
            DecodeError::BadTag(t) => write!(f, "unknown message tag {t}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decodes one message from the front of `buf`, consuming its bytes.
pub fn decode(buf: &mut Bytes) -> Result<Message, DecodeError> {
    if buf.is_empty() {
        return Err(DecodeError::Truncated);
    }
    let tag = buf[0];
    let need = match tag {
        TAG_START => START_BYTES,
        TAG_END => END_BYTES,
        TAG_RATE => RATE_BYTES,
        other => return Err(DecodeError::BadTag(other)),
    };
    if buf.len() < need {
        return Err(DecodeError::Truncated);
    }
    buf.advance(1);
    Ok(match tag {
        TAG_START => {
            let token = Token::new(get_u24(buf));
            let src = buf.get_u16();
            let dst = buf.get_u16();
            let size_hint = buf.get_u32();
            let weight_q8 = buf.get_u16();
            let spine = buf.get_u8();
            let _pad = buf.get_u8();
            Message::FlowletStart {
                token,
                src,
                dst,
                size_hint,
                weight_q8,
                spine,
            }
        }
        TAG_END => Message::FlowletEnd {
            token: Token::new(get_u24(buf)),
        },
        _ => Message::RateUpdate {
            token: Token::new(get_u24(buf)),
            rate: Rate16::from_bits(buf.get_u16()),
        },
    })
}

/// Decodes every complete message in `buf` (a TCP stream segment may end
/// mid-message; the remainder stays in `buf` for the next call).
pub fn decode_stream(buf: &mut Bytes) -> Result<Vec<Message>, DecodeError> {
    let mut out = Vec::new();
    loop {
        match decode(buf) {
            Ok(m) => out.push(m),
            Err(DecodeError::Truncated) => return Ok(out),
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start() -> Message {
        Message::FlowletStart {
            token: Token::new(0x00AB_CDEF),
            src: 17,
            dst: 143,
            size_hint: 1_000_000,
            weight_q8: 256,
            spine: 3,
        }
    }

    #[test]
    fn sizes_match_the_paper() {
        let mut buf = BytesMut::new();
        encode(&start(), &mut buf);
        assert_eq!(buf.len(), 16);
        buf.clear();
        encode(
            &Message::FlowletEnd {
                token: Token::new(1),
            },
            &mut buf,
        );
        assert_eq!(buf.len(), 4);
        buf.clear();
        encode(
            &Message::RateUpdate {
                token: Token::new(1),
                rate: Rate16::encode(10.0),
            },
            &mut buf,
        );
        assert_eq!(buf.len(), 6);
    }

    #[test]
    fn roundtrip_each_kind() {
        for msg in [
            start(),
            Message::FlowletEnd {
                token: Token::new(Token::MAX),
            },
            Message::RateUpdate {
                token: Token::new(0),
                rate: Rate16::encode(3.5),
            },
        ] {
            let mut buf = BytesMut::new();
            encode(&msg, &mut buf);
            let mut bytes = buf.freeze();
            assert_eq!(decode(&mut bytes).unwrap(), msg);
            assert!(bytes.is_empty(), "no leftover bytes");
        }
    }

    #[test]
    fn stream_decoding_handles_partials() {
        let mut buf = BytesMut::new();
        encode(&start(), &mut buf);
        encode(
            &Message::FlowletEnd {
                token: Token::new(7),
            },
            &mut buf,
        );
        encode(
            &Message::RateUpdate {
                token: Token::new(9),
                rate: Rate16::encode(1.0),
            },
            &mut buf,
        );
        let all = buf.freeze();
        // Split mid-second-message.
        let mut first = all.slice(0..18);
        let msgs = decode_stream(&mut first).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(first.len(), 2, "partial tail retained");
        // Feed the rest.
        let mut rest = BytesMut::from(&first[..]);
        rest.extend_from_slice(&all[18..]);
        let mut rest = rest.freeze();
        let msgs2 = decode_stream(&mut rest).unwrap();
        assert_eq!(msgs2.len(), 2);
        assert!(rest.is_empty());
    }

    #[test]
    fn bad_tag_is_an_error() {
        let mut bytes = Bytes::from_static(&[0xFF, 0, 0, 0]);
        assert_eq!(decode(&mut bytes), Err(DecodeError::BadTag(0xFF)));
    }

    #[test]
    fn truncated_is_reported_without_consuming() {
        let mut buf = BytesMut::new();
        encode(&start(), &mut buf);
        let mut partial = buf.freeze().slice(0..10);
        assert_eq!(decode(&mut partial), Err(DecodeError::Truncated));
        assert_eq!(partial.len(), 10, "nothing consumed");
    }
}
