//! Endpoint ↔ allocator wire protocol.
//!
//! §6.2: "Notifications of flowlet start, end, and rate updates are
//! encoded in 16, 4, and 6 bytes plus the standard TCP/IP overheads." This
//! crate implements exactly those encodings (tag byte included):
//!
//! | message        | bytes | layout                                             |
//! |----------------|-------|----------------------------------------------------|
//! | `FlowletStart` | 16    | tag, token:u24, src:u16, dst:u16, size:u32, weight:u16, spine:u8, pad:u16 |
//! | `FlowletEnd`   | 4     | tag, token:u24                                     |
//! | `RateUpdate`   | 6     | tag, token:u24, rate:[`Rate16`]                    |
//!
//! Flowlets are addressed by a compact 24-bit [`Token`] assigned by the
//! sending endpoint (and unique allocator-wide in this implementation);
//! 16 M concurrent flowlets is ~300× the 49 K flows of the paper's largest
//! benchmark. Rates travel as [`Rate16`], a custom 16-bit floating-point
//! code with ≤0.025% relative error — far below the 1% default update
//! threshold (§6.4), so quantization never masks a real change.
//!
//! [`ThresholdFilter`] implements the §6.4 update suppression, and
//! [`wire`] the byte-accounting helpers (Ethernet minimum frame and
//! header overheads) used by the overhead figures. [`exchange`] is the
//! shard-to-shard side of the control plane: the versioned frame format
//! the distributed arbiter peers speak over a real transport.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod codec;
pub mod exchange;
pub mod filter;
pub mod rate16;
pub mod wire;

pub use codec::{decode, decode_stream, encode, Message, MessageIter};
pub use filter::ThresholdFilter;
pub use rate16::Rate16;

/// Compact flowlet handle: 24 bits on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(u32);

impl Token {
    /// Largest encodable token.
    pub const MAX: u32 = 0x00FF_FFFF;

    /// Creates a token.
    ///
    /// # Panics
    /// Panics if `v` exceeds 24 bits.
    pub fn new(v: u32) -> Self {
        assert!(v <= Self::MAX, "token {v} exceeds 24 bits");
        Token(v)
    }

    /// Raw value.
    pub fn get(self) -> u32 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_roundtrip() {
        assert_eq!(Token::new(0).get(), 0);
        assert_eq!(Token::new(Token::MAX).get(), Token::MAX);
    }

    #[test]
    #[should_panic(expected = "exceeds 24 bits")]
    fn oversized_token_rejected() {
        let _ = Token::new(Token::MAX + 1);
    }
}
