//! Workspace root crate.
//!
//! This crate exists only to host the repository-level `examples/` and
//! `tests/` directories; all functionality lives in the `crates/` members.
//! See [`flowtune`] for the main library entry point.

pub use flowtune as core;
