//! Workspace root crate.
//!
//! This crate exists only to host the repository-level `examples/` and
//! `tests/` directories; all functionality lives in the `crates/`
//! members. See [`flowtune`] for the main library entry point.
//!
//! ## Crate map
//!
//! * [`flowtune`] (`crates/core`) — the system façade:
//!   `AllocatorService::builder()`, endpoint agents, flowlet tracking;
//! * `flowtune_topo` — two-tier Clos fabrics, ECMP paths, blocks;
//! * `flowtune_num` — NED and the baseline NUM optimizers, U/F-NORM;
//! * `flowtune_alloc` — the `RateAllocator` engine interface; serial and
//!   §5 multicore NED engines;
//! * `flowtune_fastpass` — per-packet timeslot arbiter + its
//!   `RateAllocator` adapter (the §6.1 baseline);
//! * `flowtune_proto` — the 16/4/6-byte control messages;
//! * `flowtune_sim` — deterministic packet-level simulator;
//! * `flowtune_workload` / `flowtune_bench` — traces and experiment
//!   binaries (all accept `--engine serial|multicore|fastpass`).
//!
//! ## Quickstart
//!
//! Build an allocator over any engine behind one API:
//!
//! ```
//! use flowtune::{AllocatorService, Engine, FlowtuneConfig};
//! use flowtune_proto::{Message, Token};
//! use flowtune_topo::{ClosConfig, TwoTierClos};
//!
//! let fabric = TwoTierClos::build(ClosConfig::paper_eval());
//! for engine in [Engine::Serial, Engine::Multicore { workers: 2 }, Engine::Fastpass] {
//!     let mut allocator = AllocatorService::builder()
//!         .fabric(&fabric)
//!         .config(FlowtuneConfig::default())
//!         .engine(engine)
//!         .build()
//!         .expect("fabric was supplied");
//!     allocator
//!         .on_message(Message::FlowletStart {
//!             token: Token::new(1),
//!             src: 0,
//!             dst: 140,
//!             size_hint: 1_000_000,
//!             weight_q8: 256,
//!             spine: 1,
//!         })
//!         .expect("token 1 is fresh");
//!     for _ in 0..150 {
//!         allocator.tick();
//!     }
//!     // Whatever the engine, a lone flow converges to ~line rate.
//!     let rate = allocator.flow_rate_gbps(Token::new(1)).unwrap();
//!     assert!(rate > 9.0, "{}: {rate}", allocator.engine_name());
//! }
//! ```

#![forbid(unsafe_code)]

pub use flowtune as core;
